"""Entry-point thread-safety classification (RA706).

A public method of a class that opted into the concurrency contract
(it carries at least one ``# repro: shared[…]`` annotation) is
classified by taint-propagating its write effects, transitively through
same-class ``self.…()`` calls:

* ``reentrant`` — every write to instance/global state it can reach is
  performed under a held lock (or there are no such writes): any number
  of threads may call it concurrently on one shared instance.
* ``borrows-caller-lock`` — the method is annotated
  ``# repro: borrows-lock[X]``: it is safe *given* the caller holds
  ``X``; concurrent use without the lock is the caller's bug (RA707
  polices the call sites).
* ``unsafe`` — some reachable write to shared state happens outside any
  lock; concurrent callers can corrupt the instance.

Only annotated classes are classified — classification of a class that
never declared shared state would drown the report in single-threaded
builders (e.g. index ``insert`` paths, which are pre-publication by
contract RA404 already enforces).  The thread-safety manifest
(:mod:`repro.analysis.concurrency.manifest`) adds the cross-file entry
points on top of this per-module machinery.
"""

from __future__ import annotations

import ast

from repro.analysis.concurrency.model import (
    ClassModel,
    ModuleModel,
    function_locals,
    iter_writes,
)

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: how deep self-call chains are followed (cycles are cut regardless)
MAX_DEPTH = 6

REENTRANT = "reentrant"
BORROWS = "borrows-caller-lock"
UNSAFE = "unsafe"


def shared_writes(func: ast.AST, cls: "ClassModel | None",
                  model: ModuleModel):
    """Writes in ``func`` that touch instance or module-global state.

    Local-variable effects are filtered out: a store through a name the
    function binds itself (and does not declare ``global``) is private
    to the call frame.
    """
    local, declared = function_locals(func)
    private = local - declared
    out = []
    for write in iter_writes(func, cls, model):
        root = write.key[0]
        if root == "self":
            if len(write.key) == 1:
                continue
            out.append(write)
        elif root in private:
            continue
        elif root in model.mutable_globals or root in declared:
            out.append(write)
    return out


def classify_method(cls: ClassModel, name: str,
                    model: ModuleModel,
                    _stack: "frozenset | None" = None):
    """``(classification, [unguarded Write, …])`` for one method."""
    if name in cls.borrows:
        return BORROWS, []
    stack = _stack or frozenset()
    if name in stack or len(stack) > MAX_DEPTH:
        return REENTRANT, []
    func = cls.methods.get(name)
    if func is None:
        return REENTRANT, []  # inherited/unknown: optimistic, see manifest
    unguarded = [w for w in shared_writes(func, cls, model) if not w.held]
    # follow same-class self-calls: a public method is only as safe as
    # the helpers it drives
    for node in ast.walk(func):
        if isinstance(node, _FUNCS + (ast.Lambda,)):
            continue
        if not isinstance(node, ast.Call):
            continue
        f = node.func
        if (isinstance(f, ast.Attribute) and isinstance(f.value, ast.Name)
                and f.value.id == "self" and f.attr in cls.methods
                and f.attr != name):
            sub_class, sub_writes = classify_method(
                cls, f.attr, model, stack | {name})
            if sub_class == UNSAFE:
                unguarded.extend(sub_writes)
            # BORROWS helpers are checked at the call site by RA707
    if unguarded:
        return UNSAFE, unguarded
    return REENTRANT, []


def public_methods(cls: ClassModel) -> "list[str]":
    return [name for name in cls.methods
            if not name.startswith("_") or name in ("__enter__", "__exit__")]


def scan_entry_points(model: ModuleModel):
    """RA706: ``(node, class, method, [writes])`` for unsafe public APIs."""
    out = []
    for cls in model.classes.values():
        if not cls.annotated:
            continue
        for name in public_methods(cls):
            classification, writes = classify_method(cls, name, model)
            if classification == UNSAFE:
                out.append((cls.methods[name], cls.name, name, writes))
    return out
