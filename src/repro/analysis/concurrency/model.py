"""The per-module concurrency model every RA7xx rule reads.

One parse of ``(tree, source)`` produces a :class:`ModuleModel`:

* which module-level globals are **mutable containers** (candidate
  shared state for the escape analysis, RA701);
* which module-level globals are **locks** (``threading.Lock()`` /
  ``RLock()``);
* per class: methods, lock-valued attributes, class-level mutable
  attributes, and the annotation tables;
* the ``# repro: shared[lock=…]`` / ``# repro: borrows-lock[…]``
  annotation comments, resolved to the fields / methods they sit on.

The annotation syntax (documented in ``docs/analysis.md``)::

    self._entries = OrderedDict()   # repro: shared[lock=_lock]
    self.acquisitions = [0] * n     # repro: shared[lock=_stats_lock]

    def _drop(self, key):           # repro: borrows-lock[_lock]
        ...

``shared[lock=X]`` designates the assigned field as shared mutable
state guarded by the owning object's lock attribute ``X`` — every write
outside ``__init__`` must then sit under ``with self.X:`` (RA703).
``shared`` with no lock designates the field as shared and *expected*
to be guarded by some owned lock.  ``borrows-lock[X]`` on a ``def``
line documents that the method requires the **caller** to hold ``X``;
its own writes are exempt from RA703, and calling it without holding
``X`` is RA707.

The model also provides :func:`iter_writes`, the shared walker yielding
every *write effect* in a function body together with the set of locks
lexically held at that point — the currency RA701/702/703/706 trade in.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.astutil import expr_key

#: method names that mutate their receiver (container or index mutators)
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "move_to_end", "build", "appendleft", "popleft",
})

#: calls that construct a fresh mutable container
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "OrderedDict", "defaultdict", "deque",
    "Counter", "bytearray",
})

#: constructor names that produce a lock object
_LOCK_CALLS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore"})

_SHARED_RE = re.compile(
    r"#\s*repro:\s*shared(?:\s*\[\s*lock\s*=\s*(?P<lock>[A-Za-z_]\w*)\s*\])?"
)
_BORROWS_RE = re.compile(
    r"#\s*repro:\s*borrows-lock\s*\[\s*(?P<lock>[A-Za-z_]\w*)\s*\]"
)


@dataclass(frozen=True)
class SharedAnnotation:
    """One ``# repro: shared[lock=…]`` comment, resolved to a field."""

    attr: str
    lock: "str | None"
    lineno: int


@dataclass(frozen=True)
class BorrowAnnotation:
    """One ``# repro: borrows-lock[…]`` comment on a ``def`` line."""

    method: str
    lock: str
    lineno: int


@dataclass(frozen=True)
class Write:
    """One write effect: the expression written through and how."""

    node: ast.AST          # anchor for the finding
    key: tuple[str, ...]   # expr_key of the written-through expression
    kind: str              # "rebind" | "store" | "del" | "mutate" | "augment"
    held: frozenset[str]   # canonical lock names lexically held


@dataclass
class ClassModel:
    """Concurrency-relevant facts about one class."""

    name: str
    node: ast.ClassDef
    methods: dict[str, ast.AST] = field(default_factory=dict)
    #: self attributes assigned a lock constructor (in any method/body)
    lock_attrs: set[str] = field(default_factory=set)
    #: class-body attributes bound to mutable containers
    class_mutables: dict[str, ast.AST] = field(default_factory=dict)
    #: attrs re-bound per-instance in __init__ (shadowing class state)
    init_rebinds: set[str] = field(default_factory=set)
    #: explicit shared-field designations: attr -> lock name (or None)
    shared_fields: dict[str, "str | None"] = field(default_factory=dict)
    #: methods documented as requiring the caller to hold a lock
    borrows: dict[str, str] = field(default_factory=dict)

    @property
    def annotated(self) -> bool:
        """Did the author opt this class into classification (RA706)?"""
        return bool(self.shared_fields)


@dataclass
class ModuleModel:
    """Everything the RA7xx scanners need from one module."""

    tree: ast.AST
    #: module-level mutable-container globals: name -> assignment node
    mutable_globals: dict[str, ast.AST] = field(default_factory=dict)
    #: module-level lock globals
    lock_globals: set[str] = field(default_factory=set)
    #: module-level explicit shared annotations (globals)
    shared_globals: dict[str, "str | None"] = field(default_factory=dict)
    classes: dict[str, ClassModel] = field(default_factory=dict)
    #: module-level (non-method) functions
    functions: dict[str, ast.AST] = field(default_factory=dict)
    imports_threading: bool = False


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

def is_mutable_container(node: ast.AST) -> bool:
    """Does this initializer expression build a mutable container?"""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name in _MUTABLE_CALLS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        # the `[0] * n` preallocation idiom
        return (is_mutable_container(node.left)
                or is_mutable_container(node.right))
    return False


def is_lock_constructor(node: ast.AST) -> bool:
    """Is this a ``threading.Lock()``-style lock construction?"""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None)
    return name in _LOCK_CALLS


def _annotation_tables(source: str) -> tuple[dict[int, "str | None"],
                                             dict[int, str]]:
    """Line → annotation payload for the two comment forms."""
    shared: dict[int, "str | None"] = {}
    borrows: dict[int, str] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro:" not in text:
            continue
        match = _SHARED_RE.search(text)
        if match is not None:
            shared[lineno] = match.group("lock")
        match = _BORROWS_RE.search(text)
        if match is not None:
            borrows[lineno] = match.group("lock")
    return shared, borrows


def _assign_targets(stmt: ast.stmt) -> list[ast.expr]:
    if isinstance(stmt, ast.Assign):
        return list(stmt.targets)
    if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)) and stmt.value is not None:
        return [stmt.target]
    return []


_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def parse_module(tree: ast.AST, source: str = "") -> ModuleModel:
    """Build the :class:`ModuleModel` of one parsed module."""
    model = ModuleModel(tree=tree)
    shared_lines, borrow_lines = _annotation_tables(source)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "threading"
                   for alias in node.names):
                model.imports_threading = True
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "threading":
                model.imports_threading = True

    body = getattr(tree, "body", [])
    for stmt in body:
        if isinstance(stmt, _FUNCS):
            model.functions[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            model.classes[stmt.name] = _parse_class(stmt, shared_lines,
                                                    borrow_lines)
        else:
            for target in _assign_targets(stmt):
                if not isinstance(target, ast.Name):
                    continue
                value = getattr(stmt, "value", None)
                if value is None:
                    continue
                if is_lock_constructor(value):
                    model.lock_globals.add(target.id)
                elif is_mutable_container(value):
                    model.mutable_globals[target.id] = stmt
                if stmt.lineno in shared_lines:
                    model.shared_globals[target.id] = shared_lines[stmt.lineno]
    return model


def _parse_class(node: ast.ClassDef, shared_lines: dict,
                 borrow_lines: dict) -> ClassModel:
    cls = ClassModel(name=node.name, node=node)
    for stmt in node.body:
        if isinstance(stmt, _FUNCS):
            cls.methods[stmt.name] = stmt
            if stmt.lineno in borrow_lines:
                cls.borrows[stmt.name] = borrow_lines[stmt.lineno]
        else:
            for target in _assign_targets(stmt):
                if not isinstance(target, ast.Name):
                    continue
                value = getattr(stmt, "value", None)
                if value is not None and is_mutable_container(value):
                    cls.class_mutables[target.id] = stmt
                if value is not None and is_lock_constructor(value):
                    cls.lock_attrs.add(target.id)

    for name, method in cls.methods.items():
        in_init = name == "__init__"
        for stmt in ast.walk(method):
            for target in _assign_targets(stmt):
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attr = target.attr
                    value = getattr(stmt, "value", None)
                    if value is not None and is_lock_constructor(value):
                        cls.lock_attrs.add(attr)
                    if in_init:
                        cls.init_rebinds.add(attr)
                    if stmt.lineno in shared_lines:
                        cls.shared_fields[attr] = shared_lines[stmt.lineno]
    return cls


# ----------------------------------------------------------------------
# The write/lock-context walker
# ----------------------------------------------------------------------

def canonical_lock(expr: ast.expr, cls: "ClassModel | None",
                   model: ModuleModel) -> "str | None":
    """Canonical name of a lock-acquiring context expression, if any.

    ``with self._lock:`` inside class ``C`` → ``"C._lock"``; a module
    lock global → its name; any other name/attr whose last component
    mentions "lock" is accepted with its dotted key (conservative: it
    *is* a lock by naming convention, even if we cannot resolve it).
    """
    key = expr_key(expr)
    if key is None:
        # `with self.locks.lock_for(0, s):` — a lock-returning call
        if isinstance(expr, ast.Call):
            inner = expr_key(expr.func)
            if inner is not None and "lock" in inner[-1].lower():
                return ".".join(inner)
        return None
    if key[0] == "self" and len(key) == 2 and cls is not None:
        if key[1] in cls.lock_attrs or "lock" in key[1].lower():
            return f"{cls.name}.{key[1]}"
        return None
    if len(key) == 1 and key[0] in model.lock_globals:
        return key[0]
    if "lock" in key[-1].lower():
        return ".".join(key)
    return None


def iter_writes(func: ast.AST, cls: "ClassModel | None",
                model: ModuleModel):
    """Yield every :class:`Write` in ``func``, with held-lock context.

    Nested function definitions are not descended into (they execute on
    their own schedule and are modeled separately, if at all); ``with``
    statements over lock expressions push their canonical lock onto the
    held set for the duration of their body.
    """
    held: list[str] = []
    borrow = None
    if cls is not None and isinstance(func, _FUNCS):
        borrow = cls.borrows.get(func.name)
    if borrow is not None and cls is not None:
        held.append(f"{cls.name}.{borrow}")

    def emit(node: ast.AST, key: "tuple[str, ...] | None", kind: str):
        if key is not None:
            yield Write(node=node, key=key, kind=kind,
                        held=frozenset(held))

    def walk(stmts) -> "list[Write]":
        out: list[Write] = []
        for stmt in stmts:
            out.extend(visit(stmt))
        return out

    def visit(stmt: ast.AST) -> "list[Write]":
        out: list[Write] = []
        if isinstance(stmt, _FUNCS + (ast.Lambda, ast.ClassDef)):
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                lock = canonical_lock(item.context_expr, cls, model)
                if lock is not None:
                    held.append(lock)
                    pushed += 1
            out.extend(walk(stmt.body))
            for _ in range(pushed):
                held.pop()
            return out
        # statement-level writes
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            kind = "augment" if isinstance(stmt, ast.AugAssign) else "rebind"
            for target in _assign_targets(stmt):
                if isinstance(target, ast.Tuple):
                    targets = list(target.elts)
                else:
                    targets = [target]
                for tgt in targets:
                    if isinstance(tgt, ast.Subscript):
                        out.extend(emit(stmt, expr_key(tgt.value), "store"))
                    elif isinstance(tgt, (ast.Name, ast.Attribute)):
                        out.extend(emit(stmt, expr_key(tgt), kind))
            if value is not None:
                out.extend(_expr_writes(value))
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    out.extend(emit(stmt, expr_key(target.value), "del"))
                elif isinstance(target, (ast.Name, ast.Attribute)):
                    out.extend(emit(stmt, expr_key(target), "del"))
        elif isinstance(stmt, ast.Expr):
            out.extend(_expr_writes(stmt.value))
        elif isinstance(stmt, (ast.Return, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                out.extend(_expr_writes(child))
        # compound statements: recurse into bodies with the same context
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, attr, None)
            if sub and not isinstance(stmt, (ast.Assign, ast.AnnAssign,
                                             ast.AugAssign)):
                out.extend(walk(sub))
        for handler in getattr(stmt, "handlers", []) or []:
            out.extend(walk(handler.body))
        for case in getattr(stmt, "cases", []) or []:
            out.extend(walk(case.body))
        if isinstance(stmt, (ast.If, ast.While)):
            out.extend(_expr_writes(stmt.test))
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            out.extend(_expr_writes(stmt.iter))
        return out

    def _expr_writes(expr: ast.AST) -> "list[Write]":
        """Mutator method calls reachable inside one expression."""
        out: list[Write] = []
        for node in ast.walk(expr):
            if isinstance(node, _FUNCS + (ast.Lambda,)):
                continue
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS):
                key = expr_key(node.func.value)
                if key is not None:
                    out.append(Write(node=node, key=key, kind="mutate",
                                     held=frozenset(held)))
        return out

    body = getattr(func, "body", [])
    yield from walk(body)


def function_locals(func: ast.AST) -> tuple[set[str], set[str]]:
    """``(local names, global-declared names)`` of one function body.

    Locals are parameters plus any plain-name assignment targets that
    are not declared ``global``/``nonlocal``; used to tell a shadowing
    local apart from a write to module state.
    """
    local: set[str] = set()
    declared: set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            local.add(arg.arg)
        if args.vararg:
            local.add(args.vararg.arg)
        if args.kwarg:
            local.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            local.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name in ast.walk(node.target):
                if isinstance(name, ast.Name):
                    local.add(name.id)
        elif isinstance(node, (ast.withitem,)) and node.optional_vars:
            for name in ast.walk(node.optional_vars):
                if isinstance(name, ast.Name):
                    local.add(name.id)
    local -= declared
    return local, declared


def iter_functions(model: ModuleModel):
    """Every ``(class-or-None, function)`` pair in the module, including
    methods and module-level functions (nested defs excluded)."""
    for func in model.functions.values():
        yield None, func
    for cls in model.classes.values():
        for func in cls.methods.values():
            yield cls, func


# ----------------------------------------------------------------------
# Single-slot per-file cache (engine feeds every rule the same tree)
# ----------------------------------------------------------------------
_CACHE: "tuple[ast.AST, ModuleModel] | None" = None


def module_model(tree: ast.AST, source: str = "") -> ModuleModel:
    """The (cached) :class:`ModuleModel` for one parsed file."""
    global _CACHE  # repro: noqa[RA701] -- single-slot memo, rebuilt per file; the analyzer is single-threaded by contract
    if _CACHE is not None and _CACHE[0] is tree:
        return _CACHE[1]
    model = parse_module(tree, source)
    _CACHE = (tree, model)
    return model
