"""Lock discipline: guarded writes, balance, ordering (RA703–RA705, RA707).

* **RA703** — a write to a field designated shared must happen while the
  designated lock is held.  Explicitly-annotated fields
  (``# repro: shared[lock=X]``) get errors; fields *inferred* shared
  (written under a self-owned lock in one method, written bare in
  another) get warnings.  ``__init__`` is exempt — the object is not yet
  published.
* **RA704** — raw ``lock.acquire()`` / ``lock.release()`` imbalance in a
  function, or an acquire whose release does not sit in a ``finally``
  block (an exception would leak the lock; use ``with`` or try/finally).
* **RA705** — lock-ordering cycles: a per-module graph with an edge
  ``A → B`` whenever ``B`` is acquired while ``A`` is held, including
  acquisitions reached through same-module calls; any cycle is a
  potential deadlock.  A self-edge (re-acquiring a held lock) is the
  degenerate one-lock deadlock.
* **RA707** — calling a ``# repro: borrows-lock[X]`` method without
  holding ``X``: the helper documents a caller-side obligation, and the
  call site violates it.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import expr_key
from repro.analysis.concurrency.model import (
    ClassModel,
    ModuleModel,
    canonical_lock,
    iter_functions,
    iter_writes,
)

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


class LockEvent:
    """One acquisition, call or raw acquire/release under lock context."""

    __slots__ = ("kind", "payload", "node", "held", "in_finally")

    def __init__(self, kind: str, payload, node: ast.AST,
                 held: "frozenset[str]", in_finally: bool):
        self.kind = kind          # "acquire_with" | "call"
        self.payload = payload    # lock id (str) or call key (tuple)
        self.node = node
        self.held = held
        self.in_finally = in_finally


def iter_lock_events(func: ast.AST, cls: "ClassModel | None",
                     model: ModuleModel) -> "list[LockEvent]":
    """All with-acquisitions and calls in ``func`` with held-lock context."""
    held: list[str] = []
    events: list[LockEvent] = []
    if cls is not None and isinstance(func, _FUNCS):
        borrow = cls.borrows.get(func.name)
        if borrow is not None:
            held.append(f"{cls.name}.{borrow}")

    def scan_expr(expr: ast.AST, in_finally: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                key = expr_key(node.func)
                if key is not None:
                    events.append(LockEvent("call", key, node,
                                            frozenset(held), in_finally))

    def walk(stmts, in_finally: bool) -> None:
        for stmt in stmts:
            visit(stmt, in_finally)

    def visit(stmt: ast.AST, in_finally: bool) -> None:
        if isinstance(stmt, _FUNCS + (ast.ClassDef,)):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            pushed = 0
            for item in stmt.items:
                scan_expr(item.context_expr, in_finally)
                lock = canonical_lock(item.context_expr, cls, model)
                if lock is not None:
                    events.append(LockEvent("acquire_with", lock,
                                            item.context_expr,
                                            frozenset(held), in_finally))
                    held.append(lock)
                    pushed += 1
            walk(stmt.body, in_finally)
            for _ in range(pushed):
                held.pop()
            return
        if isinstance(stmt, ast.Try):
            walk(stmt.body, in_finally)
            for handler in stmt.handlers:
                walk(handler.body, in_finally)
            walk(stmt.orelse, in_finally)
            walk(stmt.finalbody, True)
            return
        # this statement's own expressions (each scanned exactly once)
        for field in ("test", "iter", "value", "exc", "cause", "msg"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, ast.AST):
                scan_expr(sub, in_finally)
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for target in getattr(stmt, "targets", None) or [stmt.target]:
                scan_expr(target, in_finally)
        for field in ("body", "orelse"):
            sub = getattr(stmt, field, None)
            if sub:
                walk(sub, in_finally)
        for case in getattr(stmt, "cases", []) or []:
            walk(case.body, in_finally)

    walk(getattr(func, "body", []), False)
    return events


# ----------------------------------------------------------------------
# RA703 — designated-shared writes outside their lock
# ----------------------------------------------------------------------

def _designations(model: ModuleModel):
    """Explicit + inferred shared-field tables.

    Explicit: the annotation tables.  Inferred: a ``self`` field written
    under one specific self-owned lock somewhere in the class — other
    bare writes to it are then suspicious (warning-level).
    """
    explicit: dict[tuple[str, str], "str | None"] = {}
    for cls in model.classes.values():
        for attr, lock in cls.shared_fields.items():
            explicit[(cls.name, attr)] = lock
    inferred: dict[tuple[str, str], str] = {}
    for cls in model.classes.values():
        for func in cls.methods.values():
            if func.name == "__init__":
                continue
            for write in iter_writes(func, cls, model):
                key = write.key
                if len(key) < 2 or key[0] != "self":
                    continue
                attr = key[1]
                if (cls.name, attr) in explicit:
                    continue
                owned = [lock for lock in write.held
                         if lock.startswith(f"{cls.name}.")]
                if owned:
                    inferred.setdefault((cls.name, attr), owned[0])
    return explicit, inferred


def scan_guarded_writes(model: ModuleModel):
    """RA703: ``(write, class, attr, lock, explicit?)`` violations."""
    explicit, inferred = _designations(model)
    out = []
    # module-level shared globals: # repro: shared[lock=G] on a global
    for cls, func in iter_functions(model):
        if cls is not None and func.name == "__init__":
            continue
        for write in iter_writes(func, cls, model):
            key = write.key
            if cls is not None and len(key) >= 2 and key[0] == "self":
                attr = key[1]
                lock = explicit.get((cls.name, attr), "missing")
                if lock != "missing":
                    want = (f"{cls.name}.{lock}" if lock is not None else None)
                    if want is not None and want in write.held:
                        continue
                    if want is None and any(
                            h.startswith(f"{cls.name}.") for h in write.held):
                        continue
                    out.append((write, cls.name, attr, lock, True))
                    continue
                ilock = inferred.get((cls.name, attr))
                if ilock is not None and ilock not in write.held:
                    out.append((write, cls.name, attr,
                                ilock.split(".", 1)[1], False))
            elif len(key) >= 1 and key[0] in model.shared_globals:
                if key[0] in _method_locals(func):
                    continue  # shadowed by a function local
                lock = model.shared_globals[key[0]]
                if lock is not None and lock not in write.held:
                    out.append((write, None, key[0], lock, True))
                elif lock is None and not write.held:
                    out.append((write, None, key[0], None, True))
    return out


def _method_locals(func: ast.AST) -> set:
    from repro.analysis.concurrency.model import function_locals
    local, declared = function_locals(func)
    return local - declared


# ----------------------------------------------------------------------
# RA704 — raw acquire/release balance
# ----------------------------------------------------------------------

_BALANCE_EXEMPT = frozenset({"__enter__", "__exit__", "acquire", "release",
                             "_acquire", "_release"})


def _lockish(key: "tuple[str, ...]", cls: "ClassModel | None",
             model: ModuleModel) -> bool:
    if len(key) == 1:
        return key[0] in model.lock_globals or "lock" in key[0].lower()
    if key[0] == "self" and cls is not None and key[1] in cls.lock_attrs:
        return True
    return "lock" in key[-1].lower()


def scan_acquire_release(model: ModuleModel):
    """RA704: ``(node, message)`` for unbalanced / unprotected raw usage."""
    out = []
    for cls, func in iter_functions(model):
        if func.name in _BALANCE_EXEMPT:
            continue  # lock wrappers are unbalanced by design
        acquires: dict[tuple, list] = {}
        releases: dict[tuple, list] = {}
        for event in iter_lock_events(func, cls, model):
            if event.kind != "call" or len(event.payload) < 2:
                continue
            method = event.payload[-1]
            base = event.payload[:-1]
            if method not in ("acquire", "release") \
                    or not _lockish(base, cls, model):
                continue
            table = acquires if method == "acquire" else releases
            table.setdefault(base, []).append(event)
        for base in sorted(set(acquires) | set(releases)):
            name = ".".join(base)
            n_acq = len(acquires.get(base, []))
            n_rel = len(releases.get(base, []))
            anchor = (acquires.get(base) or releases.get(base))[0].node
            if n_acq != n_rel:
                out.append((anchor,
                            f"lock {name!r}: {n_acq} acquire() vs {n_rel} "
                            f"release() in {func.name!r}; unbalanced paths "
                            "leak or double-release the lock"))
            elif n_acq and not any(e.in_finally for e in releases[base]):
                out.append((anchor,
                            f"lock {name!r}: release() is not in a finally "
                            "block; an exception between acquire() and "
                            "release() leaks the lock (use `with` or "
                            "try/finally)"))
    return out


# ----------------------------------------------------------------------
# RA705 — lock-ordering cycles
# ----------------------------------------------------------------------

def _function_summaries(model: ModuleModel):
    summaries = {}
    for cls, func in iter_functions(model):
        fid = f"{cls.name}.{func.name}" if cls is not None else func.name
        summaries[fid] = (cls, func, iter_lock_events(func, cls, model))
    return summaries


def _resolve_callee(key: "tuple[str, ...]", cls: "ClassModel | None",
                    model: ModuleModel) -> "str | None":
    if len(key) == 2 and key[0] == "self" and cls is not None \
            and key[1] in cls.methods:
        return f"{cls.name}.{key[1]}"
    if len(key) == 1 and key[0] in model.functions:
        return key[0]
    if len(key) == 2 and key[0] in model.classes \
            and key[1] in model.classes[key[0]].methods:
        return f"{key[0]}.{key[1]}"
    return None


def lock_order_edges(model: ModuleModel):
    """``{(held, acquired): anchor node}`` over the whole module."""
    summaries = _function_summaries(model)
    acq_cache: dict[str, frozenset] = {}

    def acquired_by(fid: str, stack: frozenset) -> frozenset:
        """Locks ``fid`` may acquire, directly or transitively."""
        if fid in acq_cache:
            return acq_cache[fid]
        if fid in stack:
            return frozenset()
        cls, _func, events = summaries[fid]
        got = {e.payload for e in events if e.kind == "acquire_with"}
        for event in events:
            if event.kind == "call":
                callee = _resolve_callee(event.payload, cls, model)
                if callee is not None and callee in summaries:
                    got |= acquired_by(callee, stack | {fid})
        result = frozenset(got)
        acq_cache[fid] = result
        return result

    edges: dict[tuple, ast.AST] = {}
    for fid, (cls, _func, events) in summaries.items():
        for event in events:
            if event.kind == "acquire_with":
                for held in event.held:
                    edges.setdefault((held, event.payload), event.node)
            elif event.kind == "call" and event.held:
                callee = _resolve_callee(event.payload, cls, model)
                if callee is not None and callee in summaries:
                    for lock in acquired_by(callee, frozenset({fid})):
                        for held in event.held:
                            edges.setdefault((held, lock), event.node)
    return edges


def scan_lock_order(model: ModuleModel):
    """RA705: one ``(anchor, message)`` per distinct lock cycle."""
    edges = lock_order_edges(model)
    graph: dict[str, set] = {}
    for held, lock in edges:
        graph.setdefault(held, set()).add(lock)
    out = []
    reported: set = set()
    for (held, lock), node in sorted(edges.items(),
                                     key=lambda kv: (kv[1].lineno, kv[0])):
        if held == lock:
            cyc = (held,)
            if cyc not in reported:
                reported.add(cyc)
                out.append((node,
                            f"lock {held!r} acquired while already held "
                            "(self-deadlock unless it is an RLock)"))
            continue
        # does a path lock -> ... -> held exist?  then held -> lock closes it
        path = _find_path(graph, lock, held)
        if path is not None:
            cyc = tuple(sorted(set(path + [lock])))
            if cyc not in reported:
                reported.add(cyc)
                chain = " -> ".join(path + [lock])
                out.append((node,
                            f"lock-order cycle: {chain}; two threads taking "
                            "these locks in opposite orders can deadlock"))
    return out


def _find_path(graph: "dict[str, set]", start: str,
               goal: str) -> "list[str] | None":
    stack = [(start, [start])]
    seen = {start}
    while stack:
        node, path = stack.pop()
        if node == goal:
            return path
        for nxt in sorted(graph.get(node, ())):
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, path + [nxt]))
    return None


# ----------------------------------------------------------------------
# RA707 — borrows-lock helper called without the lock
# ----------------------------------------------------------------------

def scan_borrowed_calls(model: ModuleModel):
    """RA707: ``(node, class, method, lock)`` for unprotected borrow calls."""
    out = []
    for cls in model.classes.values():
        if not cls.borrows:
            continue
        for func in cls.methods.values():
            for event in iter_lock_events(func, cls, model):
                if event.kind != "call":
                    continue
                key = event.payload
                if len(key) != 2 or key[0] != "self":
                    continue
                lock = cls.borrows.get(key[1])
                if lock is None:
                    continue
                if f"{cls.name}.{lock}" in event.held:
                    continue
                out.append((event.node, cls.name, key[1], lock))
    return out
