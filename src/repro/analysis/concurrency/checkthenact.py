"""Check-then-act dict races (RA708).

The idiom::

    if key in cache:          # check
        return cache[key]     # act — key may be gone by now

(or its dual, ``if key not in cache: cache[key] = build()``) is only
correct when nothing can mutate ``cache`` between the check and the
act.  In a module that imports :mod:`threading` that assumption is
exactly what the module itself put in question, so the rule fires on
any membership-tested container whose *same key* is indexed, stored,
deleted or ``pop``'d inside the guarded branch — unless the whole
``if`` sits under a held lock.

The sanctioned replacements (both invisible to this rule):

* ``value = cache.get(key)`` then test ``value is None`` — one atomic
  lookup instead of two;
* take the owning lock around the check *and* the act.
"""

from __future__ import annotations

import ast

from repro.analysis.astutil import expr_key
from repro.analysis.concurrency.model import ModuleModel, canonical_lock

_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


def _membership(test: ast.AST):
    """``(key node, container key)`` when the test is ``k [not] in d``."""
    for node in ast.walk(test):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], (ast.In, ast.NotIn)):
            continue
        container = expr_key(node.comparators[0])
        if container is not None:
            return node.left, container
    return None, None


def _acts_in(stmts, key_dump: str, container: "tuple[str, ...]"):
    """Subscript/pop uses of ``container[key]`` inside the branch."""
    acts = []
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, _FUNCS + (ast.Lambda,)):
                continue
            if isinstance(node, ast.Subscript):
                if expr_key(node.value) == container \
                        and ast.dump(node.slice) == key_dump:
                    acts.append(node)
            elif (isinstance(node, ast.Call)
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in ("pop", "__getitem__", "setdefault")
                  and expr_key(node.func.value) == container
                  and node.args
                  and ast.dump(node.args[0]) == key_dump):
                acts.append(node)
    return acts


def scan_check_then_act(model: ModuleModel):
    """RA708: ``(if-node, container, act-count)`` races in threading users."""
    if not model.imports_threading:
        return []
    out = []

    def visit_func(func, cls):
        held: list[str] = []

        def walk(stmts):
            for stmt in stmts:
                visit(stmt)

        def visit(stmt):
            if isinstance(stmt, _FUNCS + (ast.ClassDef,)):
                return
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                pushed = 0
                for item in stmt.items:
                    lock = canonical_lock(item.context_expr, cls, model)
                    if lock is not None:
                        held.append(lock)
                        pushed += 1
                walk(stmt.body)
                for _ in range(pushed):
                    held.pop()
                return
            if isinstance(stmt, ast.If) and not held:
                key_node, container = _membership(stmt.test)
                if key_node is not None:
                    acts = _acts_in(stmt.body, ast.dump(key_node), container)
                    if acts:
                        out.append((stmt, ".".join(container), len(acts)))
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if sub:
                    walk(sub)
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body)
            for case in getattr(stmt, "cases", []) or []:
                walk(case.body)

        walk(getattr(func, "body", []))

    for node in ast.walk(model.tree):
        if isinstance(node, _FUNCS):
            cls = None
            # method? find the enclosing annotated class for lock context
            for candidate in model.classes.values():
                if node in candidate.methods.values():
                    cls = candidate
                    break
            visit_func(node, cls)
    return out
