"""Concurrency-safety analysis (RA701–RA708) and the thread-safety manifest.

The ROADMAP's serving tentpole requires an engine whose prepared
structures are shared read-only across concurrent executions — exactly
the contract Free Join (arXiv 2301.10841) and the unified binary/WCOJ
architecture (arXiv 2505.19918) presume.  This package makes that
property *checkable*:

* :mod:`~repro.analysis.concurrency.model` — one parse of a module into
  a concurrency model: mutable module globals, lock attributes, the
  ``# repro: shared[lock=…]`` / ``# repro: borrows-lock[…]`` annotation
  tables, and a write/lock-context walker shared by every rule.
* :mod:`~repro.analysis.concurrency.shared_state` — escape analysis:
  RA701 (module-level mutable state written after import time) and
  RA702 (class-level mutable state mutated through instances).
* :mod:`~repro.analysis.concurrency.lockcheck` — lock discipline:
  RA703 (write to a designated-shared field outside its guarding lock),
  RA704 (acquire/release imbalance, bare ``acquire()`` without
  try/finally), RA705 (lock-ordering cycles across the module's
  functions) and RA707 (a ``borrows-lock`` helper called outside the
  lock it documents).
* :mod:`~repro.analysis.concurrency.classify` — RA706: public methods
  of annotated classes classified ``reentrant | borrows-caller-lock |
  unsafe`` by taint-propagating shared-state writes.
* :mod:`~repro.analysis.concurrency.checkthenact` — RA708:
  check-then-act dict races (``if k in d: … d[k]``) in modules that
  use :mod:`threading`.
* :mod:`~repro.analysis.concurrency.manifest` — the machine-readable
  thread-safety manifest (``python -m repro.analysis
  --concurrency-manifest``) classifying the serving-path entry points
  (``Session.prepare``/``execute``, ``IndexCache.get``/``put``, every
  join driver's ``run``) for the future service layer to consume.

The rules themselves are registered in
:mod:`repro.analysis.rules_concurrency` so the CLI, noqa table,
baseline, SARIF and changed-only pipelines treat RA7xx exactly like the
existing families.
"""

from __future__ import annotations

from repro.analysis.concurrency.model import (
    BorrowAnnotation,
    ClassModel,
    ModuleModel,
    SharedAnnotation,
)

__all__ = [
    "BorrowAnnotation",
    "ClassModel",
    "ModuleModel",
    "SharedAnnotation",
]
