"""Escape analysis: mutable state that outlives a single call (RA701/702).

A module-level container or a class-body container is *import-time*
state: every thread that imports the module shares it.  Writing to it
from inside a function body therefore races unless the write sits under
a lock.  The two rules split by where the state lives:

* **RA701** — module-level mutable global (list/dict/set/… display or
  constructor) written after import time: a ``global`` rebind, a
  subscript store/delete, or a mutator-method call on the global, from
  any function in the module, not shadowed by a local of the same name
  and not under a ``with``-held lock.
* **RA702** — class-body mutable attribute mutated through instances
  (``self.X.append(…)``, ``self.X[k] = …``) or through the class
  (``C.X[k] = …``) where ``__init__`` never rebinds ``self.X`` to a
  fresh per-instance object: every instance aliases one shared
  container.
"""

from __future__ import annotations

import ast

from repro.analysis.concurrency.model import (
    ModuleModel,
    Write,
    function_locals,
    iter_functions,
    iter_writes,
)


def _is_import_time(func: ast.AST) -> bool:
    """Module-level code (not wrapped in a def) runs once, at import."""
    return not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))


def scan_module_globals(model: ModuleModel) -> "list[tuple[Write, str]]":
    """RA701: ``(write, global name)`` pairs for racy global mutations."""
    out: list[tuple[Write, str]] = []
    if not model.mutable_globals:
        return out
    for cls, func in iter_functions(model):
        local, declared_global = function_locals(func)
        for write in iter_writes(func, cls, model):
            name = write.key[0]
            if name not in model.mutable_globals:
                continue
            if name in local and name not in declared_global:
                continue  # a local shadows the global
            if write.kind == "rebind" and len(write.key) == 1 \
                    and name not in declared_global:
                continue  # plain assignment creates a local, no escape
            if write.held:
                continue  # lock-guarded; RA703 checks it is the *right* lock
            out.append((write, name))
    return out


def scan_class_state(model: ModuleModel) -> "list[tuple[Write, str, str]]":
    """RA702: ``(write, class, attr)`` for shared class-level mutations."""
    out: list[tuple[Write, str, str]] = []
    for cls in model.classes.values():
        shared_attrs = {
            attr for attr in cls.class_mutables
            if attr not in cls.init_rebinds
        }
        if not shared_attrs:
            continue
        for func in cls.methods.values():
            for write in iter_writes(func, cls, model):
                if write.held:
                    continue
                key = write.key
                attr = None
                if len(key) >= 2 and key[0] == "self" and key[1] in shared_attrs:
                    # self.X[k] = / self.X.append(...) — len 2 covers both
                    # (subscript stores key through the container expr)
                    if write.kind != "rebind" or len(key) > 2:
                        attr = key[1]
                elif len(key) >= 2 and key[0] == cls.name \
                        and key[1] in shared_attrs:
                    attr = key[1]
                if attr is not None:
                    out.append((write, cls.name, attr))
    return out
