"""The machine-readable thread-safety manifest.

``python -m repro.analysis --concurrency-manifest`` classifies every
serving-path entry point — ``Session.prepare``/``execute``, the index
cache operations, the obs write paths and each join driver's ``run``
method — and emits the result as JSON for the future serving layer (and
CI) to consume.  Two analysis models, matching how the objects are
shared at runtime:

* ``shared`` — one instance is used by many threads concurrently
  (Session, IndexCache, Metrics, Tracer).  Classification comes from
  :func:`repro.analysis.concurrency.classify.classify_method`: every
  reachable write to instance/global state must be lock-guarded (or
  the method is annotated ``borrows-lock``).  Free functions a shared
  entry drives (the pipeline stages) are checked for parameter/global
  mutation with :func:`classify_free_function`.
* ``per-call`` — a fresh instance is constructed for every execution
  (the join drivers), so writes to ``self`` are private by
  construction; the entry is unsafe only if it mutates state *aliased
  from the prebuilt shared structures* it was constructed over (the
  ``self.X = param`` aliases recorded by
  :func:`constructor_aliases`), or module globals.
* ``process`` — the entry runs in a shard worker process
  (:mod:`repro.parallel.worker`).  Nothing is shared at runtime, so
  the contract is *capture discipline* instead of locking: only
  shared-memory handles and frozen plan decisions may cross the
  boundary — the entry must not read or write mutable module globals
  (which silently diverge between parent and workers) or module-level
  locks (which neither survive a fork mid-acquire nor pickle into
  spawn tasks).  Checked by :func:`classify_process_entry`.

The static analysis is deliberately optimistic about calls it cannot
resolve (an unknown callee is assumed not to mutate shared state);
mutations reached through subscripts of aliased containers are likewise
below its resolution.  The runtime witness —
``tests/engine/test_thread_stress.py`` — closes exactly that gap, and
the hashtrie's GIL-scoped lazy expansion is documented where it lives
(:mod:`repro.indexes.hashtrie`).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.analysis.concurrency import classify
from repro.analysis.concurrency.model import (
    ClassModel,
    ModuleModel,
    function_locals,
    iter_writes,
    parse_module,
)

SCHEMA_VERSION = 1

#: repo root inferred from this file's location
#: (src/repro/analysis/concurrency/manifest.py → four levels up), so the
#: manifest works regardless of the caller's working directory
REPO_ROOT = Path(__file__).resolve().parents[4]

#: (owner class or None, method/function names, repo-relative path,
#:  model, require_safe)
ENTRY_TABLE: "tuple[tuple, ...]" = (
    ("Session", ("prepare", "execute"), "src/repro/engine/session.py",
     "shared", True),
    ("IndexCache", ("get", "put", "put_if_absent", "invalidate_relation",
                    "clear"), "src/repro/engine/cache.py", "shared", True),
    ("Metrics", ("inc", "observe", "merge"), "src/repro/obs/metrics.py",
     "shared", True),
    ("Tracer", ("add_span",), "src/repro/obs/trace.py", "shared", True),
    (None, ("bind", "plan", "prepare"), "src/repro/engine/pipeline.py",
     "shared", True),
    (None, ("join",), "src/repro/joins/executor.py", "per-call", True),
    ("GenericJoin", ("run",), "src/repro/joins/generic_join.py",
     "per-call", True),
    ("GenericJoinBatch", ("run",), "src/repro/joins/batch.py",
     "per-call", True),
    ("HashTrieJoin", ("run",), "src/repro/joins/hashtrie_join.py",
     "per-call", True),
    ("BinaryHashJoin", ("run",), "src/repro/joins/binary.py",
     "per-call", True),
    ("LeapfrogTrieJoin", ("run",), "src/repro/joins/leapfrog.py",
     "per-call", True),
    ("RecursiveJoin", ("run",), "src/repro/joins/recursive.py",
     "per-call", True),
    (None, ("worker_main", "run_shard_task"),
     "src/repro/parallel/worker.py", "process", True),
)


def constructor_aliases(cls: ClassModel) -> set[str]:
    """Self attributes ``__init__`` binds *directly* to a parameter.

    These alias whatever the caller passed in — for a join driver, the
    prebuilt shared structures — so mutating them from the execute path
    escapes the per-call instance.
    """
    init = cls.methods.get("__init__")
    if init is None:
        return set()
    params = {a.arg for a in (init.args.posonlyargs + init.args.args
                              + init.args.kwonlyargs)} - {"self"}
    aliased: set[str] = set()
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign):
            continue
        if not isinstance(stmt.value, ast.Name) \
                or stmt.value.id not in params:
            continue
        for target in stmt.targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                aliased.add(target.attr)
    return aliased


def classify_free_function(func: ast.AST, model: ModuleModel):
    """``(classification, evidence)`` for a module-level function.

    Unsafe when it mutates a parameter (shared by definition: the
    caller owns it) or module-global state outside a lock; rebinding a
    local is private to the frame.
    """
    params = set()
    args = getattr(func, "args", None)
    if args is not None:
        params = {a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)}
    local, declared = function_locals(func)
    rebound = (local - declared) - params
    evidence = []
    for write in iter_writes(func, None, model):
        if write.held:
            continue
        root = write.key[0]
        if root in params and write.kind != "rebind":
            evidence.append(write)
        elif root in rebound:
            continue
        elif root in model.mutable_globals or root in declared:
            evidence.append(write)
    return (classify.UNSAFE if evidence else classify.REENTRANT), evidence


def classify_process_entry(func: ast.AST, model: ModuleModel):
    """``(classification, evidence writes, captured names)`` for a
    process-boundary entry function.

    A worker entry runs on the far side of a ``fork``/``spawn``: module
    state it reaches is copied (fork) or re-imported (spawn), never
    shared with the parent — so the contract is *capture discipline*,
    not locking.  Unsafe when the entry reads or writes a module-level
    mutable container (a registry would silently diverge between parent
    and workers) or touches a module-level lock (lock state does not
    survive a fork mid-acquire, and locks do not pickle into spawn
    tasks).  Constants and locals are fine.
    """
    local, declared = function_locals(func)
    evidence = []
    for write in iter_writes(func, None, model):
        root = write.key[0]
        if root in model.mutable_globals or root in declared \
                or root in model.lock_globals:
            evidence.append(write)
    loaded = {node.id for node in ast.walk(func)
              if isinstance(node, ast.Name)
              and isinstance(node.ctx, ast.Load)}
    captured = sorted((loaded - local)
                      & (set(model.mutable_globals)
                         | model.lock_globals))
    classification = (classify.UNSAFE if evidence or captured
                      else classify.REENTRANT)
    return classification, evidence, captured


def _percall_writes(cls: ClassModel, name: str, model: ModuleModel,
                    aliased: set[str], stack: frozenset):
    """Aliased-structure / global mutations reachable from one method."""
    if name in stack or len(stack) > classify.MAX_DEPTH:
        return []
    func = cls.methods.get(name)
    if func is None:
        return []
    local, declared = function_locals(func)
    evidence = []
    for write in iter_writes(func, cls, model):
        root = write.key[0]
        if root == "self":
            if len(write.key) >= 2 and write.key[1] in aliased \
                    and write.kind != "rebind":
                evidence.append(write)
        elif root in (local - declared):
            continue
        elif root in model.mutable_globals or root in declared:
            evidence.append(write)
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in cls.methods
                and node.func.attr != name):
            evidence.extend(_percall_writes(cls, node.func.attr, model,
                                            aliased, stack | {name}))
    return evidence


def _write_dict(write) -> dict:
    return {"target": ".".join(write.key), "kind": write.kind,
            "line": getattr(write.node, "lineno", 0)}


def build_manifest(root: "str | Path | None" = None) -> dict:
    """Classify every :data:`ENTRY_TABLE` entry under ``root``."""
    root = REPO_ROOT if root is None else Path(root)
    entries = []
    models: dict[str, ModuleModel] = {}
    for owner, names, rel_path, exec_model, require_safe in ENTRY_TABLE:
        source_path = root / rel_path
        if rel_path not in models:
            source = source_path.read_text(encoding="utf-8")
            models[rel_path] = parse_module(
                ast.parse(source, filename=str(source_path)), source)
        model = models[rel_path]
        for name in names:
            entry = {
                "qualname": f"{owner}.{name}" if owner else name,
                "path": rel_path,
                "model": exec_model,
                "require_safe": require_safe,
            }
            if owner is not None:
                cls = model.classes.get(owner)
                if cls is None or name not in cls.methods:
                    entry["classification"] = "unknown"
                    entry["writes"] = []
                    entry["evidence"] = (f"class {owner} not found"
                                         if cls is None else
                                         f"method {owner}.{name} not found")
                    entries.append(entry)
                    continue
                if exec_model == "shared":
                    classification, writes = classify.classify_method(
                        cls, name, model)
                    evidence = ("all reachable shared-state writes are "
                                "lock-guarded" if classification ==
                                classify.REENTRANT else
                                "unguarded shared-state writes" if
                                classification == classify.UNSAFE else
                                f"annotated borrows-lock"
                                f"[{cls.borrows.get(name)}]")
                else:
                    aliased = constructor_aliases(cls)
                    writes = _percall_writes(cls, name, model, aliased,
                                             frozenset())
                    classification = (classify.UNSAFE if writes
                                      else classify.REENTRANT)
                    evidence = (
                        "fresh instance per execution; no mutation of "
                        f"shared prebuilt structures ({', '.join(sorted(aliased)) or 'none aliased'})"
                        if not writes else
                        "mutates structures aliased from the caller")
            else:
                func = model.functions.get(name)
                if func is None:
                    entry["classification"] = "unknown"
                    entry["writes"] = []
                    entry["evidence"] = f"function {name} not found"
                    entries.append(entry)
                    continue
                if exec_model == "process":
                    classification, writes, captured = \
                        classify_process_entry(func, model)
                    evidence = (
                        "captures no mutable or lock-bearing module "
                        "state; only handles and plan decisions cross "
                        "the process boundary" if classification ==
                        classify.REENTRANT else
                        "captures module state that does not survive "
                        f"the process boundary: {', '.join(captured) or 'writes below'}")
                else:
                    classification, writes = classify_free_function(func,
                                                                    model)
                    evidence = ("pure function of its inputs (no parameter "
                                "or global mutation)" if classification ==
                                classify.REENTRANT else
                                "mutates a parameter or module global")
            entry["classification"] = classification
            entry["writes"] = [_write_dict(w) for w in writes]
            entry["evidence"] = evidence
            entries.append(entry)
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "repro.analysis.concurrency",
        "assumptions": [
            "CPython GIL: dict/list single ops are atomic; the hashtrie's "
            "lazy expansion relies on idempotent value publication "
            "(documented in repro/indexes/hashtrie.py)",
            "unresolved calls are assumed non-mutating; the runtime "
            "witness is tests/engine/test_thread_stress.py",
        ],
        "entries": entries,
    }


def validate_manifest(data: dict) -> list[str]:
    """Schema problems in a manifest dict (empty = valid)."""
    problems = []
    if not isinstance(data, dict):
        return ["manifest is not an object"]
    if data.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    entries = data.get("entries")
    if not isinstance(entries, list) or not entries:
        return problems + ["entries missing or empty"]
    valid = {classify.REENTRANT, classify.BORROWS, classify.UNSAFE,
             "unknown"}
    for i, entry in enumerate(entries):
        where = f"entries[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        for field in ("qualname", "path", "model", "classification"):
            if not isinstance(entry.get(field), str):
                problems.append(f"{where}.{field} missing or not a string")
        if entry.get("classification") not in valid:
            problems.append(
                f"{where}.classification {entry.get('classification')!r} "
                f"not in {sorted(valid)}")
        if entry.get("model") not in ("shared", "per-call", "process"):
            problems.append(f"{where}.model must be shared|per-call|process")
        if not isinstance(entry.get("writes"), list):
            problems.append(f"{where}.writes missing or not a list")
    return problems


def failing_entries(data: dict) -> list[dict]:
    """Entries that must be safe but are not (``unsafe`` or unresolved)."""
    return [entry for entry in data.get("entries", ())
            if entry.get("require_safe")
            and entry.get("classification") not in (classify.REENTRANT,
                                                    classify.BORROWS)]


def render_manifest(root: "str | Path | None" = None) -> str:
    """The manifest as pretty JSON text."""
    return json.dumps(build_manifest(root), indent=2) + "\n"
