"""Numeric-kernel lint rules (RA801–RA808).

The fourth dataflow family, served from the cached per-file
:func:`~repro.analysis.numeric.model.numeric_model` (dtype/copy abstract
interpretation over the shared CFGs plus the columnar-contract scans).
Registering through the ordinary lint registry means ``noqa``, the
baseline, SARIF, ``--changed-only`` and the CI gates apply unchanged —
exactly like the RA4xx/RA5xx/RA7xx families.

* **RA801** — ``object``-dtype array reaching a kernel call
  (``searchsorted``/``lexsort``/``np.intersect1d``/batch-cursor entry
  points).  Error: the kernels' cost model assumes machine integers.
* **RA802** — implicit dtype-mixing comparisons/arithmetic between
  arrays of different definite dtype classes.
* **RA803** — allocation-producing numpy op (fancy index, ``astype``
  without ``copy=False``, ``np.concatenate``/``np.append``) inside an
  innermost loop; scoped to ``joins/``/``indexes/``/``core/``.
* **RA804** — ``.tolist()``/per-element iteration over an array in hot
  scope (innermost loops and recursive join drivers).
* **RA805** — a provably unsorted or non-contiguous array flowing into
  a ``searchsorted``-family call.
* **RA806** — per-tuple ``index.insert()`` loops where a ``build_bulk``
  path exists (SonicIndex/SortedTrie/make_index constructions).
* **RA807** — the int64-or-object columnar contract:
  ``column_array``-style helpers must attempt int64 and fall back to
  object in a try/except; ``SUPPORTS_BATCH`` indexes must accept int64
  arrays without ``.astype`` conversion; ``Relation.columns()``/
  ``column_array`` callers feeding kernels must branch on the dtype
  split.  Error severity throughout.
* **RA808** — dead array materialisation: an array is built but only
  its length/shape is ever read (reaching-defs-scope-powered).

Per-finding severities come from the model, like the other dataflow
families: definite contract breaks are errors, judgement calls are
warnings a human adopts into the baseline or fixes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath
from typing import ClassVar

from repro.analysis.engine import LintRule, register_rule
from repro.analysis.findings import Finding, Severity
from repro.analysis.numeric.model import HOT_DIRS, numeric_model


class _NumericRule(LintRule):
    """Base for rules served from the shared numeric model."""

    severity = Severity.WARNING

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node, code, severity, message in numeric_model(tree).findings:
            if code == self.code:
                yield Finding(
                    path=path,
                    line=getattr(node, "lineno", 1),
                    column=getattr(node, "col_offset", 0) + 1,
                    rule=self.code,
                    severity=Severity[severity.upper()],
                    message=message,
                )


@register_rule
class ObjectDtypeKernelRule(_NumericRule):
    """object-dtype array entering a vectorised kernel call."""

    code = "RA801"
    title = "object-dtype array reaches a kernel call"
    severity = Severity.ERROR


@register_rule
class DtypeMixRule(_NumericRule):
    """Arithmetic/comparison across definite, different dtype classes."""

    code = "RA802"
    title = "implicit dtype-mixing array arithmetic/comparison"


@register_rule
class HotLoopNumpyAllocRule(_NumericRule):
    """Allocation-producing numpy op inside an innermost hot loop.

    Scoped to the kernel directories (``joins/``, ``indexes/``,
    ``core/``) like the RA501 family — a fancy-index copy in test or
    benchmark setup code is not a per-binding cost.
    """

    code = "RA803"
    title = "numpy allocation inside an innermost hot loop"
    _dirs: ClassVar[frozenset] = HOT_DIRS

    def applies_to(self, path: PurePath) -> bool:
        return any(part in self._dirs for part in path.parts)


@register_rule
class ArrayScalarisationRule(_NumericRule):
    """.tolist()/per-element iteration over an array in hot scope."""

    code = "RA804"
    title = "array scalarised (.tolist()/per-element loop) in hot scope"


@register_rule
class UnsortedSearchsortedRule(_NumericRule):
    """Unsorted/non-contiguous array into a searchsorted-family call."""

    code = "RA805"
    title = "unsorted or strided array into searchsorted"


@register_rule
class ScalarBuildLoopRule(_NumericRule):
    """Per-tuple insert() loop where a build_bulk path exists."""

    code = "RA806"
    title = "per-tuple index.insert() loop (build_bulk available)"


@register_rule
class ColumnarContractRule(_NumericRule):
    """The int64-or-object columnar contract over storage + adapters."""

    code = "RA807"
    title = "int64-canonical columnar contract violation"
    severity = Severity.ERROR


@register_rule
class DeadMaterializationRule(_NumericRule):
    """Array built, then only len()'d — the build is wasted work."""

    code = "RA808"
    title = "dead array materialisation (only its size is read)"
