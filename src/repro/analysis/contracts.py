"""Index contract checker (RA201–RA205).

The paper's framework promise (§4.1) is that *any* index plugs into the
same Generic Join driver as long as it provides the required operations.
In C++ that contract is enforced by the template type system at compile
time; here we enforce it by introspection over
:mod:`repro.indexes.registry` — without executing any index operation
(the ``SUPPORTS_PREFIX=False`` raise check is done on the method's AST,
not by calling it):

* **RA201** — a registered class leaves part of the
  :class:`~repro.indexes.base.TupleIndex` abstract surface unimplemented
  (it would raise ``TypeError`` at instantiation, or worse, a factory
  could smuggle an abstract subclass past the registry).
* **RA202** — ``NAME`` problems: missing/placeholder ``NAME``, a ``NAME``
  that disagrees with the registry key, or two registered classes
  claiming the same ``NAME``.
* **RA203** — ``SUPPORTS_PREFIX=False`` but an overriding prefix method
  does *not* raise :class:`~repro.errors.UnsupportedOperationError`: the
  structure would silently serve wrong prefix answers instead of being
  excluded from prefix experiments.
* **RA204** — ``SUPPORTS_PREFIX=True`` but ``prefix_lookup`` /
  ``count_prefix`` are never overridden, so the inherited base methods
  raise at the first probe.
* **RA205** — a :class:`~repro.indexes.base.PrefixCursor` subclass in the
  index's module leaves cursor abstract methods unimplemented.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Callable, Mapping

from repro.analysis.findings import Finding, Severity

_PREFIX_METHODS = ("prefix_lookup", "count_prefix")


def _class_location(cls: type) -> tuple[str, int]:
    try:
        path = inspect.getsourcefile(cls) or "<unknown>"
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return "<unknown>", 1
    return path, line


def _finding(cls: type, rule: str, message: str,
             severity: Severity = Severity.ERROR) -> Finding:
    path, line = _class_location(cls)
    return Finding(path=path, line=line, column=1, rule=rule,
                   severity=severity, message=message)


def _defining_class(cls: type, method: str) -> "type | None":
    """The class in ``cls``'s MRO whose ``__dict__`` defines ``method``."""
    for klass in cls.__mro__:
        if method in vars(klass):
            return klass
    return None


def _method_raises(cls: type, method: str, exception_name: str) -> bool:
    """Does ``cls.<method>``'s body contain ``raise <exception_name>``?

    Checked on the source AST — never by executing the method.  Methods we
    cannot get source for (C extensions) are given the benefit of the
    doubt.
    """
    func = vars(cls).get(method)
    func = getattr(func, "__func__", func)  # unwrap staticmethod et al.
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return True
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == exception_name:
            return True
    return False


def _resolve_class(name: str, factory: Callable) -> "type | None":
    """The index class behind a registry factory, without instantiation.

    Factories in this repository are the classes themselves; for wrapper
    functions we follow ``__wrapped__`` or give up (reported as RA202 by
    the caller).
    """
    if isinstance(factory, type):
        return factory
    wrapped = getattr(factory, "__wrapped__", None)
    if isinstance(wrapped, type):
        return wrapped
    return None


def check_class(registry_name: str, cls: type) -> list[Finding]:
    """All contract findings for one registered index class."""
    from repro.indexes.base import PrefixCursor, TupleIndex

    findings: list[Finding] = []

    if not (isinstance(cls, type) and issubclass(cls, TupleIndex)):
        findings.append(_finding(
            cls if isinstance(cls, type) else type(cls), "RA201",
            f"registry entry {registry_name!r} is not a TupleIndex subclass",
        ))
        return findings

    # RA201 — abstract surface fully implemented
    remaining = sorted(getattr(cls, "__abstractmethods__", frozenset()))
    if remaining:
        findings.append(_finding(
            cls, "RA201",
            f"{cls.__name__} (registered as {registry_name!r}) leaves "
            f"abstract methods unimplemented: {remaining}",
        ))

    # RA202 — NAME discipline
    name = cls.__dict__.get("NAME", None)
    if name is None or name == TupleIndex.NAME:
        findings.append(_finding(
            cls, "RA202",
            f"{cls.__name__} does not declare its own NAME (found "
            f"{getattr(cls, 'NAME', None)!r}); every registered index "
            "needs a unique registry key",
        ))
    elif name != registry_name:
        findings.append(_finding(
            cls, "RA202",
            f"{cls.__name__}.NAME is {name!r} but it is registered as "
            f"{registry_name!r}; the two must agree for harness sweeps",
        ))

    supports_prefix = getattr(cls, "SUPPORTS_PREFIX", None)
    if not isinstance(supports_prefix, bool):
        findings.append(_finding(
            cls, "RA202",
            f"{cls.__name__}.SUPPORTS_PREFIX must be a bool, found "
            f"{supports_prefix!r}",
        ))
        return findings

    if supports_prefix:
        # RA204 — the prefix surface must actually be implemented
        for method in _PREFIX_METHODS:
            if _defining_class(cls, method) is TupleIndex:
                findings.append(_finding(
                    cls, "RA204",
                    f"{cls.__name__} declares SUPPORTS_PREFIX=True but "
                    f"inherits the raising base {method}(); implement it "
                    "or declare SUPPORTS_PREFIX=False",
                ))
    else:
        # RA203 — overridden prefix methods must keep raising
        for method in _PREFIX_METHODS:
            owner = _defining_class(cls, method)
            if owner is None or owner is TupleIndex:
                continue  # inherited base default raises: contract held
            if not _method_raises(owner, method, "UnsupportedOperationError"):
                findings.append(_finding(
                    cls, "RA203",
                    f"{cls.__name__} declares SUPPORTS_PREFIX=False but "
                    f"{owner.__name__}.{method}() does not raise "
                    "UnsupportedOperationError; point-only structures must "
                    "refuse prefix operations loudly",
                ))

    # RA205 — cursors shipped alongside the index implement their surface
    module = inspect.getmodule(cls)
    if module is not None:
        for value in vars(module).values():
            if (isinstance(value, type) and issubclass(value, PrefixCursor)
                    and value is not PrefixCursor
                    and value.__module__ == module.__name__):
                open_methods = sorted(
                    getattr(value, "__abstractmethods__", frozenset()))
                if open_methods:
                    findings.append(_finding(
                        value, "RA205",
                        f"cursor {value.__name__} leaves abstract methods "
                        f"unimplemented: {open_methods}",
                    ))
    return findings


def check_registry(factories: "Mapping[str, Callable] | None" = None,
                   ) -> list[Finding]:
    """Contract-check every registered index (the whole §4.1 surface).

    With ``factories=None`` the live :mod:`repro.indexes.registry` is
    checked — importing it registers the built-in index set.
    """
    if factories is None:
        import repro.indexes  # noqa: F401  (import populates the registry)
        from repro.indexes.registry import registered_factories

        factories = registered_factories()

    findings: list[Finding] = []
    seen_names: dict[str, str] = {}
    for registry_name in sorted(factories):
        factory = factories[registry_name]
        cls = _resolve_class(registry_name, factory)
        if cls is None:
            findings.append(Finding(
                path="<registry>", line=1, column=1, rule="RA202",
                severity=Severity.WARNING,
                message=(f"registry entry {registry_name!r} is an opaque "
                         "factory; cannot introspect its index class"),
            ))
            continue
        findings.extend(check_class(registry_name, cls))
        declared = getattr(cls, "NAME", registry_name)
        if declared in seen_names and seen_names[declared] != cls.__qualname__:
            findings.append(_finding(
                cls, "RA202",
                f"NAME {declared!r} claimed by both "
                f"{seen_names[declared]} and {cls.__qualname__}",
            ))
        seen_names.setdefault(declared, cls.__qualname__)
    findings.sort()
    return findings
