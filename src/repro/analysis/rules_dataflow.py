"""Dataflow-backed lint rules (RA401–RA404, RA501–RA504, RA601).

These rules plug the CFG/fixpoint machinery of
:mod:`repro.analysis.dataflow` into the ordinary lint registry, so the
CLI, the noqa table, the baseline and the reporters treat them exactly
like the syntactic RA1xx family:

* **RA401** — cursor/iterator protocol misuse (use before ``open``,
  advance/read after exhaustion) from the typestate pass.
* **RA402** — seek/depth discipline (``up``/``ascend`` above the root).
* **RA403** — prefix methods on a value flowing from a
  ``SUPPORTS_PREFIX=False`` index construction.
* **RA404** — ``insert``/``build`` after the index was handed to an
  adapter/executor (mutation-after-build).
* **RA501** — container allocation inside a hot region (innermost loop
  or directly-recursive join driver).
* **RA502** — known-O(n) work inside a hot region.
* **RA503** — dead stores (assigned, never read on any path).
* **RA504** — definite use-before-def (guaranteed ``NameError``).
* **RA601** — observability calls (metrics/tracer/observer methods) in
  an innermost loop not routed through the null-object ``.enabled``
  guard, so instrumentation can never regress the hot path silently.

Definite violations are errors; may-violations (only on *some* path) are
warnings — the per-finding severity comes from the analysis itself, not
the rule class, so one rule can emit both.

The typestate and reaching-defs passes each run **once per file** and
are shared across their rule family through a single-slot cache keyed on
the tree object identity (the engine parses each file once and runs all
rules against that same tree, so one slot suffices).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath
from typing import ClassVar

from repro.analysis.astutil import collect_import_aliases
from repro.analysis.dataflow.cfg import build_cfg, function_cfgs
from repro.analysis.dataflow.hotloop import scan_hot_regions, scan_unguarded_obs
from repro.analysis.dataflow.reaching import dead_stores, use_before_def
from repro.analysis.dataflow.solver import report_fixed_point, solve_forward
from repro.analysis.dataflow.typestate import TypestateAnalysis
from repro.analysis.engine import LintRule, register_rule
from repro.analysis.findings import Finding, Severity

# ----------------------------------------------------------------------
# shared per-file analysis caches (single slot: the engine parses each
# file once and feeds the same tree object to every rule)
# ----------------------------------------------------------------------
_TS_CACHE: "tuple[ast.AST, list] | None" = None
_RD_CACHE: "tuple[ast.AST, list] | None" = None


def _typestate_results(tree: ast.AST) -> "list[tuple[ast.AST, str, str, str]]":
    """(node, code, severity, message) tuples from the typestate pass."""
    global _TS_CACHE
    if _TS_CACHE is not None and _TS_CACHE[0] is tree:
        return _TS_CACHE[1]
    aliases = collect_import_aliases(tree)
    results: list[tuple[ast.AST, str, str, str]] = []
    seen: set[tuple[int, int, str, str]] = set()

    def report(node: ast.AST, code: str, severity: str, message: str) -> None:
        key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
               code, message)
        if key not in seen:
            seen.add(key)
            results.append((node, code, severity, message))

    for cfg in function_cfgs(tree):
        analysis = TypestateAnalysis(aliases)
        in_states = solve_forward(cfg, analysis)
        report_fixed_point(cfg, analysis, in_states, report)
    _TS_CACHE = (tree, results)
    return results


def _reaching_results(tree: ast.AST) -> "list[tuple[ast.AST, str, str]]":
    """(name_node, code, message) tuples from the reaching-defs pass."""
    global _RD_CACHE
    if _RD_CACHE is not None and _RD_CACHE[0] is tree:
        return _RD_CACHE[1]
    results: list[tuple[ast.AST, str, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cfg = build_cfg(node)
        for name, message in use_before_def(cfg):
            results.append((name, "RA504", message))
        for name, message in dead_stores(cfg):
            results.append((name, "RA503", message))
    _RD_CACHE = (tree, results)
    return results


class _DataflowRule(LintRule):
    """Base for rules served from the shared typestate results."""

    def _emit(self, path: str, node: ast.AST, severity: str,
              message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            severity=Severity[severity.upper()],
            message=message,
        )

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node, code, severity, message in _typestate_results(tree):
            if code == self.code:
                yield self._emit(path, node, severity, message)


# ----------------------------------------------------------------------
# RA4xx — typestate
# ----------------------------------------------------------------------
@register_rule
class CursorProtocolRule(_DataflowRule):
    """TrieIterator used before open() or after exhaustion."""

    code = "RA401"
    title = "cursor/iterator protocol misuse (use before open / after end)"
    severity = Severity.ERROR


@register_rule
class DepthDisciplineRule(_DataflowRule):
    """up()/ascend() popping above the root (unbalanced depth)."""

    code = "RA402"
    title = "seek/depth discipline violation (pop above root)"
    severity = Severity.ERROR


@register_rule
class PrefixCapabilityRule(_DataflowRule):
    """Prefix methods on a SUPPORTS_PREFIX=False index value."""

    code = "RA403"
    title = "prefix method on a point-lookup-only index"
    severity = Severity.ERROR


@register_rule
class MutationAfterBuildRule(_DataflowRule):
    """insert()/build() after the index was handed to the executor."""

    code = "RA404"
    title = "index mutated after build (stale cursors)"
    severity = Severity.ERROR


# ----------------------------------------------------------------------
# RA5xx — hot-loop hygiene and reaching definitions
# ----------------------------------------------------------------------
_HOT_DIRS = frozenset({"joins", "indexes"})


class _HotLoopRule(LintRule):
    """Base for the hot-region scanners (scoped to the probe-path code)."""

    severity = Severity.WARNING
    _code: ClassVar[str] = ""

    def applies_to(self, path: PurePath) -> bool:
        return any(part in _HOT_DIRS for part in path.parts)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node, code, message in scan_hot_regions(tree):
            if code == self.code:
                yield self.finding(path, node, message)


@register_rule
class HotLoopAllocRule(_HotLoopRule):
    """Fresh container allocation inside a hot region."""

    code = "RA501"
    title = "allocation inside a hot region (per-binding cost)"


@register_rule
class HotLoopLinearRule(_HotLoopRule):
    """Known-O(n) operation inside a hot region."""

    code = "RA502"
    title = "O(n) operation inside a hot region"


#: RA601 additionally covers the multiprocess fan-out layer: its
#: dispatch/collect loops carry flight-recorder and metrics-exposition
#: call sites that must obey the same ``.enabled`` discipline
_OBS_HOT_DIRS = _HOT_DIRS | {"parallel"}


@register_rule
class UnguardedObsRule(_HotLoopRule):
    """Obs call in an innermost loop outside the ``.enabled`` pattern.

    The ``repro.obs`` contract (see its module docs and the overhead gate
    in ``benchmarks/bench_trajectory.py``): hot loops in ``joins/``,
    ``indexes/`` and ``parallel/`` may only call metrics/tracer/observer/
    flight-recorder methods behind an ``if …enabled:`` branch — either an
    ``.enabled`` attribute test or a hoisted flag whose name ends in
    ``enabled``.  Plain ``+=`` counter accumulation (flushed after the
    loop) is the sanctioned alternative and is not flagged.
    """

    code = "RA601"
    title = "unguarded observability call in a hot loop"

    def applies_to(self, path: PurePath) -> bool:
        return any(part in _OBS_HOT_DIRS for part in path.parts)

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node, method in scan_unguarded_obs(tree):
            yield self.finding(
                path, node,
                f"obs call .{method}() inside an innermost loop without an "
                "`.enabled` guard; branch on `<metrics/tracer/obs>.enabled` "
                "(or a hoisted `*_enabled` flag), or accumulate locally and "
                "flush outside the loop",
            )


@register_rule
class DeadStoreRule(LintRule):
    """Assignments whose value is never read on any path."""

    code = "RA503"
    title = "dead store (value never read)"
    severity = Severity.WARNING

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node, code, message in _reaching_results(tree):
            if code == self.code:
                yield self.finding(path, node, message)


@register_rule
class UseBeforeDefRule(LintRule):
    """Loads of locals unbound on every path (guaranteed NameError)."""

    code = "RA504"
    title = "local used before any assignment (guaranteed NameError)"
    severity = Severity.ERROR

    def check(self, tree: ast.AST, path: str) -> Iterator[Finding]:
        for node, code, message in _reaching_results(tree):
            if code == self.code:
                yield self.finding(path, node, message)
