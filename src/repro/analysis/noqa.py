"""``# repro: noqa[RULE]`` suppression comments.

A finding is suppressed when the *physical line it is reported on* carries
a suppression comment naming its rule — or a blanket ``# repro: noqa``
with no rule list.  Rule lists are comma-separated and case-insensitive:

.. code-block:: python

    value = hash(key)        # repro: noqa[RA101] -- golden-file fixture
    probe = random.random()  # repro: noqa[RA102,RA105]
    legacy_call()            # repro: noqa

Suppressions are deliberately line-scoped (no file- or block-scoped
form): every silenced finding stays visible next to the code it excuses,
which is what a reviewer audits.
"""

from __future__ import annotations

import re

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\[(?P<rules>[A-Za-z0-9_,\s]*)\])?",
)

#: sentinel for a blanket ``# repro: noqa`` (suppresses every rule)
BLANKET = frozenset({"*"})


def line_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule codes suppressed there.

    A blanket suppression maps to :data:`BLANKET`.  Lines without a
    suppression comment are absent from the mapping.
    """
    table: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "#" not in text:  # cheap pre-filter before the regex
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            table[lineno] = BLANKET
        else:
            codes = frozenset(
                code.strip().upper() for code in rules.split(",") if code.strip()
            )
            table[lineno] = codes or BLANKET
    return table


def is_suppressed(table: dict[int, frozenset[str]], line: int, rule: str) -> bool:
    """Is ``rule`` suppressed on ``line`` according to ``table``?"""
    codes = table.get(line)
    if codes is None:
        return False
    return codes is BLANKET or "*" in codes or rule.upper() in codes
