"""Static plan validation (RA301–RA309) for queries and plan IR.

Run *before* execution, these checks catch the plan-level mistakes that
would otherwise surface as silently-wrong join results deep inside a
benchmark sweep:

* **RA301** — a required (output) attribute is covered by no atom: the
  query hypergraph has no edge cover, the AGM bound is undefined and the
  Generic Join has nothing to intersect for that attribute.
* **RA302** — the total order γ is not a permutation of the query's
  attributes (missing, duplicated or stray attributes).
* **RA303** — a supplied fractional edge cover is infeasible for the AGM
  bound (negative weight, unknown edge, or an undercovered vertex).
* **RA304** — relation/schema inconsistency: an atom without a relation,
  or a relation whose arity/attributes disagree with its atom.
* **RA305** — duplicate atom aliases (self-join occurrences must be
  distinguishable).
* **RA306** — compiled-plan index-spec inconsistency
  (:func:`validate_join_plan`): a spec whose permutation does not match
  its attribute count, a hashtable spec without a key split, an atom
  with no (or more than one) spec, or a spec for an alias the query
  does not contain.
* **RA307** — a compiled plan carrying an unresolved or unknown
  algorithm/engine (``"auto"`` must be resolved by the plan stage; an
  executor dispatching an unknown name would mis-execute).
* **RA308** — stage-tree malformation in a unified plan: a stage whose
  algorithm is unresolved (``"auto"`` must not survive below the root),
  a synthetic ``stage:`` atom with no matching child stage, a child
  whose output does not cover the attributes its parent atom binds, a
  duplicated child label, or a child stage that feeds no atom.
* **RA309** — a lazy index spec on a kind that cannot materialize trie
  levels one at a time (lazy builds need columnar truncated-prefix
  bulk builds; only the level-at-a-time-capable kinds qualify).

Feasibility of a given cover needs no LP — it is a linear scan — so this
module stays dependency-free and cheap enough for
:func:`repro.joins.executor.join` to run it on every call in debug mode
(``debug=True`` or ``REPRO_DEBUG=1``).  The RA306–RA309 checks accept
any object shaped like :class:`repro.engine.ir.JoinPlan` (duck-typed,
so this module never imports the engine package it validates).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import PlanValidationError
from repro.planner.query import JoinQuery

_WEIGHT_TOLERANCE = 1e-9


@dataclass(frozen=True)
class PlanIssue:
    """One plan-level defect; ``code`` is an RA3xx rule."""

    code: str
    message: str

    def render(self) -> str:
        return f"{self.code}: {self.message}"


def validate_plan(query: JoinQuery,
                  order: "Sequence[str] | None" = None,
                  weights: "Mapping[str, float] | None" = None,
                  relations: "Mapping[str, object] | None" = None,
                  required_attributes: "Sequence[str] | None" = None,
                  ) -> list[PlanIssue]:
    """Every plan defect found; empty list means the plan is sound."""
    issues: list[PlanIssue] = []

    aliases = [atom.alias for atom in query.atoms]
    duplicates = sorted({a for a in aliases if aliases.count(a) > 1})
    if duplicates:
        issues.append(PlanIssue(
            "RA305",
            f"duplicate atom aliases {duplicates}; give self-join "
            "occurrences distinct aliases",
        ))

    covered: set[str] = set()
    for atom in query.atoms:
        covered.update(atom.attributes)
    required = tuple(required_attributes
                     if required_attributes is not None
                     else query.attributes)
    for attribute in required:
        if attribute not in covered:
            issues.append(PlanIssue(
                "RA301",
                f"attribute {attribute!r} is covered by no atom: the "
                "hypergraph has no edge cover and the AGM bound is "
                "undefined",
            ))

    if order is not None:
        issues.extend(_check_order(query, order))
    if weights is not None:
        issues.extend(_check_weights(query, weights))
    if relations is not None:
        issues.extend(_check_relations(query, relations))
    return issues


def _check_order(query: JoinQuery, order: Sequence[str]) -> list[PlanIssue]:
    issues: list[PlanIssue] = []
    order = list(order)
    expected = set(query.attributes)
    seen: set[str] = set()
    for attribute in order:
        if attribute in seen:
            issues.append(PlanIssue(
                "RA302",
                f"total order repeats attribute {attribute!r}",
            ))
        seen.add(attribute)
    stray = sorted(seen - expected)
    missing = sorted(expected - seen)
    if stray:
        issues.append(PlanIssue(
            "RA302",
            f"total order names attributes outside the query: {stray}",
        ))
    if missing:
        issues.append(PlanIssue(
            "RA302",
            f"total order misses query attributes: {missing} — γ must be "
            "a permutation of the query's attribute set",
        ))
    return issues


def _check_weights(query: JoinQuery,
                   weights: Mapping[str, float]) -> list[PlanIssue]:
    issues: list[PlanIssue] = []
    known = {atom.alias for atom in query.atoms}
    for edge, weight in weights.items():
        if edge not in known:
            issues.append(PlanIssue(
                "RA303",
                f"cover assigns weight to unknown edge {edge!r}",
            ))
        if weight < -_WEIGHT_TOLERANCE:
            issues.append(PlanIssue(
                "RA303",
                f"cover weight for edge {edge!r} is negative ({weight})",
            ))
    for attribute in query.attributes:
        total = sum(weights.get(atom.alias, 0.0)
                    for atom in query.atoms_with(attribute))
        if total < 1.0 - _WEIGHT_TOLERANCE:
            issues.append(PlanIssue(
                "RA303",
                f"fractional cover undercovers attribute {attribute!r} "
                f"(sum of incident weights {total:.6f} < 1): the AGM "
                "bound certificate is invalid",
            ))
    return issues


def _check_relations(query: JoinQuery,
                     relations: Mapping[str, object]) -> list[PlanIssue]:
    issues: list[PlanIssue] = []
    for atom in query.atoms:
        relation = relations.get(atom.alias)
        if relation is None:
            issues.append(PlanIssue(
                "RA304",
                f"no relation bound for atom {atom.alias!r}",
            ))
            continue
        arity = getattr(relation, "arity", None)
        if arity is not None and arity != atom.arity:
            issues.append(PlanIssue(
                "RA304",
                f"atom {atom.alias!r} binds {atom.arity} attributes but "
                f"its relation has arity {arity}",
            ))
        schema = getattr(relation, "schema", None)
        schema_attributes = tuple(getattr(schema, "attributes", ()) or ())
        if schema_attributes and set(schema_attributes) != set(atom.attributes):
            issues.append(PlanIssue(
                "RA304",
                f"atom {atom.alias!r} binds attributes {atom.attributes} "
                f"but its relation's schema carries {schema_attributes}",
            ))
    return issues


#: resolved algorithm names a compiled plan may carry (never "auto")
_RESOLVED_ALGORITHMS = ("generic", "binary", "hashtrie", "leapfrog",
                        "recursive", "unified")
#: resolved algorithm names a *stage* inside a unified tree may carry —
#: stages are leaves of the dispatch, so "unified" must not recur
_STAGE_ALGORITHMS = ("generic", "binary", "hashtrie", "leapfrog",
                     "recursive")
#: resolved engine names ("" = not applicable, i.e. non-generic plans)
_RESOLVED_ENGINES = ("", "tuple", "batch")
#: alias prefix marking a synthetic atom fed by a child stage's output
#: (mirrors repro.engine.ir.STAGE_ALIAS_PREFIX; kept as a literal so
#: the validator stays free of engine imports)
_STAGE_PREFIX = "stage:"
#: index kinds whose adapters can materialize trie levels one at a
#: time (mirrors repro.indexes.lazy.LAZY_CAPABLE_KINDS; the registry
#: cross-check test pins the two tuples together)
_LAZY_KINDS = ("sonic", "sortedtrie")


def validate_join_plan(plan,
                       relations: "Mapping[str, object] | None" = None,
                       ) -> list[PlanIssue]:
    """RA306–RA309 checks over a compiled :class:`~repro.engine.ir.JoinPlan`.

    ``plan`` is duck-typed (``query`` / ``algorithm`` / ``engine`` /
    ``total_order`` / ``atom_order`` / ``index_specs`` /
    ``root_stage`` attributes) so the validator has no dependency on
    the engine package.  With ``relations``, spec permutations are
    additionally checked against each relation's actual arity.  For
    ``algorithm == "unified"`` the checks recurse over the stage tree:
    each stage is validated like a small flat plan (RA306/RA309 on its
    specs and orders) plus the tree-shape rules (RA308).
    """
    issues: list[PlanIssue] = []

    algorithm = getattr(plan, "algorithm", None)
    if algorithm not in _RESOLVED_ALGORITHMS:
        issues.append(PlanIssue(
            "RA307",
            f"plan carries unresolved or unknown algorithm {algorithm!r}; "
            f"a compiled plan must name one of {_RESOLVED_ALGORITHMS}",
        ))
    engine = getattr(plan, "engine", "")
    if engine not in _RESOLVED_ENGINES:
        issues.append(PlanIssue(
            "RA307",
            f"plan carries unresolved or unknown engine {engine!r}; "
            f"a compiled plan must name one of {_RESOLVED_ENGINES}",
        ))

    if algorithm == "unified":
        root = getattr(plan, "root_stage", None)
        if root is None:
            issues.append(PlanIssue(
                "RA308",
                "unified plan carries no root stage: the stage tree is "
                "the whole execution recipe and cannot be empty",
            ))
        else:
            issues.extend(_check_stage_tree(root, relations))
        return issues

    query = plan.query
    aliases = {atom.alias for atom in query.atoms}
    spec_issues, seen = _check_specs(aliases, tuple(plan.index_specs),
                                     relations)
    issues.extend(spec_issues)
    issues.extend(_check_plan_shape(algorithm, query, aliases, seen,
                                    tuple(getattr(plan, "atom_order", ())),
                                    tuple(getattr(plan, "total_order", ()))))
    return issues


def _check_specs(aliases: set,
                 specs: tuple,
                 relations: "Mapping[str, object] | None",
                 ) -> "tuple[list[PlanIssue], set[str]]":
    """Per-spec RA306/RA309 checks, shared by flat plans and stages.

    Returns the issues plus the set of aliases carrying a spec (the
    shape checks compare it against the expected atom coverage).
    """
    issues: list[PlanIssue] = []
    seen: set[str] = set()
    for spec in specs:
        if spec.alias not in aliases:
            issues.append(PlanIssue(
                "RA306",
                f"index spec targets alias {spec.alias!r}, which the "
                "query does not contain",
            ))
        if spec.alias in seen:
            issues.append(PlanIssue(
                "RA306",
                f"alias {spec.alias!r} has more than one index spec",
            ))
        seen.add(spec.alias)
        if len(spec.permutation) != len(spec.attribute_order):
            issues.append(PlanIssue(
                "RA306",
                f"index spec for {spec.alias!r} permutes "
                f"{len(spec.permutation)} columns but orders "
                f"{len(spec.attribute_order)} attributes",
            ))
        if sorted(spec.permutation) != list(range(len(spec.permutation))):
            issues.append(PlanIssue(
                "RA306",
                f"index spec for {spec.alias!r} has permutation "
                f"{spec.permutation}, not a permutation of column "
                "positions",
            ))
        if spec.kind == "hashtable" and spec.key_arity is None:
            issues.append(PlanIssue(
                "RA306",
                f"hashtable spec for {spec.alias!r} carries no key split "
                "(key_arity is None): the probe key is undefined",
            ))
        if (spec.key_arity is not None
                and not 0 <= spec.key_arity <= len(spec.attribute_order)):
            issues.append(PlanIssue(
                "RA306",
                f"index spec for {spec.alias!r} has key_arity "
                f"{spec.key_arity} outside its {len(spec.attribute_order)} "
                "attributes",
            ))
        if getattr(spec, "lazy", False) and spec.kind not in _LAZY_KINDS:
            issues.append(PlanIssue(
                "RA309",
                f"index spec for {spec.alias!r} requests a lazy build on "
                f"kind {spec.kind!r}, which cannot materialize trie levels "
                f"one at a time; lazy builds are limited to "
                f"{list(_LAZY_KINDS)}",
            ))
        if relations is not None and spec.alias in (relations or {}):
            arity = getattr(relations[spec.alias], "arity", None)
            if arity is not None and len(spec.permutation) > arity:
                issues.append(PlanIssue(
                    "RA306",
                    f"index spec for {spec.alias!r} permutes "
                    f"{len(spec.permutation)} columns but its relation "
                    f"has arity {arity}",
                ))
    return issues, seen


def _check_plan_shape(algorithm, query, aliases: set, seen: set,
                      atom_order: tuple, total_order: tuple,
                      ) -> list[PlanIssue]:
    """Algorithm-specific coverage/order checks (flat plans and stages)."""
    issues: list[PlanIssue] = []
    if algorithm == "binary":
        if sorted(atom_order) != sorted(aliases):
            issues.append(PlanIssue(
                "RA306",
                f"binary plan's atom order {list(atom_order)} is not a "
                "permutation of the query's atom aliases",
            ))
        else:
            expected = set(atom_order[1:])
            if seen != expected:
                issues.append(PlanIssue(
                    "RA306",
                    "binary plan must carry exactly one hashtable spec "
                    f"per non-leading atom {sorted(expected)}, got "
                    f"{sorted(seen)}",
                ))
    elif algorithm in _STAGE_ALGORITHMS:
        if seen != aliases:
            issues.append(PlanIssue(
                "RA306",
                f"plan must carry exactly one index spec per atom "
                f"{sorted(aliases)}, got {sorted(seen)}",
            ))
        issues.extend(_check_order(query, total_order))
    return issues


def _check_stage_tree(root,
                      relations: "Mapping[str, object] | None",
                      ) -> list[PlanIssue]:
    """RA308 tree-shape checks plus per-stage RA306/RA309 spec checks.

    Stages are duck-typed like :class:`repro.engine.ir.PlanStage`
    (``label`` / ``algorithm`` / ``query`` / ``output`` /
    ``index_specs`` / ``atom_order`` / ``total_order`` / ``children``).
    """
    issues: list[PlanIssue] = []
    stack = [root]
    while stack:
        stage = stack.pop()
        label = getattr(stage, "label", "?")
        algorithm = getattr(stage, "algorithm", None)
        if algorithm not in _STAGE_ALGORITHMS:
            issues.append(PlanIssue(
                "RA308",
                f"stage {label!r} carries unresolved or unknown algorithm "
                f"{algorithm!r}; every stage of a unified plan must name "
                f"one of {_STAGE_ALGORITHMS} — 'auto' must not survive "
                "below the root",
            ))
        children = tuple(getattr(stage, "children", ()))
        child_outputs: dict[str, set] = {}
        for child in children:
            child_label = getattr(child, "label", "?")
            feeder = _STAGE_PREFIX + str(child_label)
            if feeder in child_outputs:
                issues.append(PlanIssue(
                    "RA308",
                    f"stage {label!r} has two child stages labelled "
                    f"{child_label!r}; the feeder aliases would collide",
                ))
            child_outputs[feeder] = set(getattr(child, "output", ()))
            stack.append(child)
        fed: set[str] = set()
        query = getattr(stage, "query", None)
        atoms = tuple(getattr(query, "atoms", ()))
        for atom in atoms:
            if not atom.alias.startswith(_STAGE_PREFIX):
                continue
            if atom.alias not in child_outputs:
                issues.append(PlanIssue(
                    "RA308",
                    f"stage {label!r} probes synthetic atom "
                    f"{atom.alias!r} with no matching child stage",
                ))
                continue
            fed.add(atom.alias)
            missing = sorted(set(atom.attributes) - child_outputs[atom.alias])
            if missing:
                issues.append(PlanIssue(
                    "RA308",
                    f"child stage feeding {atom.alias!r} outputs "
                    f"{sorted(child_outputs[atom.alias])} but the parent "
                    f"atom binds uncovered attributes {missing}",
                ))
        unconsumed = sorted(set(child_outputs) - fed)
        if unconsumed:
            issues.append(PlanIssue(
                "RA308",
                f"stage {label!r} has child stages {unconsumed} whose "
                "output feeds no atom in its query",
            ))
        aliases = {atom.alias for atom in atoms}
        spec_issues, seen = _check_specs(
            aliases, tuple(getattr(stage, "index_specs", ())), relations)
        issues.extend(spec_issues)
        issues.extend(_check_plan_shape(
            algorithm, query, aliases, seen,
            tuple(getattr(stage, "atom_order", ())),
            tuple(getattr(stage, "total_order", ()))))
    return issues


def check_join_plan(plan,
                    relations: "Mapping[str, object] | None" = None) -> None:
    """Raise :class:`~repro.errors.PlanValidationError` on any IR defect."""
    issues = validate_join_plan(plan, relations=relations)
    if issues:
        summary = "; ".join(issue.render() for issue in issues)
        raise PlanValidationError(
            f"plan validation failed for {plan.query}: {summary}"
        )


def check_plan(query: JoinQuery,
               order: "Sequence[str] | None" = None,
               weights: "Mapping[str, float] | None" = None,
               relations: "Mapping[str, object] | None" = None,
               required_attributes: "Sequence[str] | None" = None) -> None:
    """Raise :class:`~repro.errors.PlanValidationError` on any defect."""
    issues = validate_plan(query, order=order, weights=weights,
                           relations=relations,
                           required_attributes=required_attributes)
    if issues:
        summary = "; ".join(issue.render() for issue in issues)
        raise PlanValidationError(
            f"plan validation failed for {query}: {summary}"
        )
