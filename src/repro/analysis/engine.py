"""The lint engine: rule registry, file walker and finding collection.

Rules are small AST passes registered with :func:`register_rule`; the
engine parses each Python file once, runs every rule whose
:meth:`LintRule.applies_to` accepts the path, and filters the resulting
findings through the ``# repro: noqa`` table (:mod:`repro.analysis.noqa`).
Everything is stdlib-only (``ast`` + ``pathlib``) so the linter runs in
environments without the library's numeric dependencies.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path, PurePath
from typing import ClassVar

from repro.analysis.findings import Finding, Severity
from repro.analysis.noqa import is_suppressed, line_suppressions

#: rule code reserved for files the engine cannot parse
PARSE_ERROR_RULE = "RA001"

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".venv", "venv", "node_modules",
              ".mypy_cache", ".pytest_cache", "build", "dist"}


class LintRule(abc.ABC):
    """One lint pass: a code, a path scope and an AST check."""

    code: ClassVar[str] = "RA000"
    title: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    #: rules that read annotation comments (not present in the AST) set
    #: this; the engine then passes ``source=`` to :meth:`check`
    wants_source: ClassVar[bool] = False

    def applies_to(self, path: PurePath) -> bool:
        """Path predicate; rules scoped to subtrees override this."""
        return True

    @abc.abstractmethod
    def check(self, tree: ast.AST, path: str) -> Iterable[Finding]:
        """Yield findings for one parsed file."""

    # ------------------------------------------------------------------
    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``'s source position."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.code,
            severity=self.severity,
            message=message,
        )


_RULES: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding one rule instance to the global registry."""
    instance = cls()
    if instance.code in _RULES:
        raise ValueError(f"lint rule {instance.code} registered twice")
    # import-time registration: decorators run while the module loads,
    # under the import lock; the registry is read-only afterwards
    _RULES[instance.code] = instance  # repro: noqa[RA701]
    return cls


def all_rules() -> list[LintRule]:
    """Every registered rule, sorted by code."""
    return [_RULES[code] for code in sorted(_RULES)]


def select_rules(codes: "Sequence[str] | None") -> list[LintRule]:
    """Registered rules filtered to ``codes`` (all rules when ``None``)."""
    if codes is None:
        return all_rules()
    wanted = {code.upper() for code in codes}
    unknown = wanted - set(_RULES)
    # contract (RA2xx) and plan (RA3xx) codes are valid filters but are
    # produced by their own engines, not the lint registry
    unknown = {c for c in unknown
               if not (c.startswith("RA2") or c.startswith("RA3"))}
    if unknown:
        raise ValueError(
            f"unknown lint rules {sorted(unknown)}; known: {sorted(_RULES)}"
        )
    return [rule for code, rule in sorted(_RULES.items()) if code in wanted]


# ----------------------------------------------------------------------
# Driving the rules over sources and trees
# ----------------------------------------------------------------------
def analyze_source(source: str, path: "str | PurePath",
                   rules: "Sequence[LintRule] | None" = None) -> list[Finding]:
    """Lint one in-memory source buffer as if it lived at ``path``."""
    pure = PurePath(path)
    name = str(path)
    try:
        tree = ast.parse(source, filename=name)
    except SyntaxError as exc:
        return [Finding(
            path=name,
            line=exc.lineno or 1,
            column=(exc.offset or 1),
            rule=PARSE_ERROR_RULE,
            severity=Severity.ERROR,
            message=f"file does not parse: {exc.msg}",
        )]
    suppressions = line_suppressions(source)
    findings: list[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        if not rule.applies_to(pure):
            continue
        if rule.wants_source:
            produced = rule.check(tree, name, source=source)
        else:
            produced = rule.check(tree, name)
        for found in produced:
            if not is_suppressed(suppressions, found.line, found.rule):
                findings.append(found)
    findings.sort()
    return findings


def analyze_file(path: "str | Path",
                 rules: "Sequence[LintRule] | None" = None) -> list[Finding]:
    """Lint one file from disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Finding(
            path=str(path), line=1, column=1, rule=PARSE_ERROR_RULE,
            severity=Severity.ERROR, message=f"cannot read file: {exc}",
        )]
    return analyze_source(source, file_path, rules=rules)


def iter_python_files(paths: Iterable["str | Path"]) -> Iterator[Path]:
    """All ``.py`` files under ``paths`` (files pass through, dirs recurse)."""
    seen: set[Path] = set()
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        else:
            candidates = sorted(root.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def analyze_paths(paths: Iterable["str | Path"],
                  rules: "Sequence[LintRule] | None" = None) -> list[Finding]:
    """Lint every Python file under ``paths``; findings sorted by location."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(analyze_file(file_path, rules=rules))
    findings.sort()
    return findings
