"""Key-range locking for parallel Sonic builds (§3.4.2).

The paper reduces locking overhead by locking *ranges of slots* rather
than the whole level, and reports that a granularity of 8192 slots per
lock is "robust and close-to-optimal (never more than 30 % worse than
optimal)".  :class:`KeyRangeLockManager` implements exactly that scheme:
one :class:`threading.Lock` per contiguous slot range per level, plus a
dedicated allocator lock per level (bucket reservation is a shared bump
pointer and must be atomic).

The contention model in :mod:`repro.hardware.cost_model` consumes the
acquisition counts recorded here to estimate multi-core scaling, since the
GIL hides real speedup in CPython (see DESIGN.md §1).
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError

DEFAULT_GRANULARITY = 8192


class KeyRangeLockManager:
    """Per-level striped locks over slot ranges.

    Parameters
    ----------
    num_levels:
        How many Sonic levels to stripe.
    capacity:
        Slots per level.
    granularity:
        Slots covered by one lock (the paper's tuning knob; default 8192).
    """

    def __init__(self, num_levels: int, capacity: int,
                 granularity: int = DEFAULT_GRANULARITY):
        if granularity < 1:
            raise ConfigurationError(f"granularity must be >= 1, got {granularity}")
        self.granularity = granularity
        self.num_levels = num_levels
        self.capacity = capacity
        stripes = max(1, -(-capacity // granularity))
        self.stripes_per_level = stripes
        self._locks = [[threading.Lock() for _ in range(stripes)]
                       for _ in range(num_levels)]
        self._alloc_locks = [threading.Lock() for _ in range(num_levels)]
        self._stats_lock = threading.Lock()
        # instrumentation consumed by the contention cost model
        self.acquisitions = [0] * num_levels   # repro: shared[lock=_stats_lock]

    def stripe_of(self, slot: int) -> int:
        """Stripe index covering ``slot``."""
        return (slot // self.granularity) % self.stripes_per_level

    def lock_for(self, level: int, slot: int) -> threading.Lock:
        """The lock guarding ``slot`` at ``level`` (records the acquisition)."""
        with self._stats_lock:
            self.acquisitions[level] += 1
        return self._locks[level][self.stripe_of(slot)]

    def allocator_lock(self, level: int) -> threading.Lock:
        """The lock serializing bucket reservation at ``level``."""
        return self._alloc_locks[level]

    def total_acquisitions(self) -> int:
        """Lock acquisitions across all levels (contention-model input)."""
        return sum(self.acquisitions)
