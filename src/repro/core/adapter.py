"""Index adapters: from relations in storage order to total-order indexes.

The paper's ``SonicIndexAdapter`` (Listing 1/2) maps between a table's
storage schema and the query's *total order* schema at compile time.  The
runtime equivalent here does three jobs:

1. permute each tuple's components into total-order position before
   insertion (§2.3.1 — "by permutating the attributes of the relations
   they can be queried according to the total order");
2. extract an index-compatible prefix from a partially-bound *final tuple*
   (the Generic Join's candidate result) for prefix lookups;
3. permute matching index tuples back into result position.

Adapters are index-agnostic, like the C++ framework: anything satisfying
:class:`~repro.indexes.base.TupleIndex` plugs in.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.errors import SchemaError
from repro.indexes.base import TupleIndex
from repro.storage.relation import Relation

#: global switch for the columnar fast build path; the equivalence tests
#: and the build benchmark flip it to pit ``build_bulk`` against the
#: per-tuple reference on identical inputs
_BULK_BUILD = True


def bulk_build_enabled() -> bool:
    """Is the columnar fast build path currently enabled?"""
    return _BULK_BUILD


def set_bulk_build(enabled: bool) -> bool:
    """Toggle the columnar fast build path; returns the previous setting."""
    global _BULK_BUILD
    previous = _BULK_BUILD
    _BULK_BUILD = bool(enabled)
    return previous


class IndexAdapter:
    """Binds one relation to one index under a query's total order."""

    def __init__(self, relation: Relation, index: TupleIndex,
                 total_order: Sequence[str]):
        order = [a for a in total_order if a in relation.schema]
        if len(order) != relation.arity:
            missing = set(relation.schema.attributes) - set(total_order)
            raise SchemaError(
                f"total order {list(total_order)} does not cover attributes "
                f"{sorted(missing)} of relation {relation.name!r}"
            )
        if index.arity != relation.arity:
            raise SchemaError(
                f"index arity {index.arity} != relation arity {relation.arity}"
            )
        self.relation = relation
        self.index = index
        #: this relation's attributes, in total-order sequence — the order
        #: in which the index levels store them
        self.attribute_order: tuple[str, ...] = tuple(order)
        self._permutation = relation.schema.permutation_to(order)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Permute and build every tuple (the WCOJ ad-hoc index build).

        Bulk-capable indexes take the columnar path: the relation's cached
        column arrays, permuted into total order, are handed whole to
        :meth:`~repro.indexes.base.TupleIndex.build_bulk` — one vectorized
        sort instead of per-tuple root-to-leaf probing.  Everything else
        (and runs with the switch off) keeps the per-tuple insert loop.
        """
        perm = self._permutation
        index = self.index
        relation = self.relation
        if _BULK_BUILD and index.SUPPORTS_BULK_BUILD and len(relation):
            columns = relation.columns()
            index.build_bulk(tuple(columns[i] for i in perm))
            return
        insert = index.insert
        if perm == tuple(range(relation.arity)):
            for row in relation:
                insert(row)
        else:
            for row in relation:
                insert(tuple(row[i] for i in perm))

    # ------------------------------------------------------------------
    # Probe-side helpers used by the Generic Join
    # ------------------------------------------------------------------
    @property
    def supports_batch(self) -> bool:
        """Does the wrapped index ship a native vectorized batch kernel?

        ``engine="auto"`` picks the batch driver only when every adapter
        in the join answers True (the fallback shim would join correctly
        but without the constant-factor win).
        """
        return self.index.SUPPORTS_BATCH

    def batch_cursor(self):
        """A fresh :class:`~repro.indexes.base.BatchCursor` over the index."""
        return self.index.batch_cursor()

    def position_of(self, attribute: str) -> int:
        """Index level of ``attribute`` (its rank in this adapter's order)."""
        try:
            return self.attribute_order.index(attribute)
        except ValueError:
            raise SchemaError(
                f"attribute {attribute!r} not indexed by {self.relation.name!r}"
            ) from None

    def extract_prefix(self, binding: dict[str, object]) -> tuple:
        """Longest index prefix derivable from bound attribute values.

        ``binding`` maps attribute name → value for the attributes the join
        has bound so far; the prefix stops at the first of this adapter's
        attributes that is unbound (prefix lookups need contiguous bound
        components — the point of the total order).
        """
        prefix = []
        for attribute in self.attribute_order:
            if attribute not in binding:
                break
            prefix.append(binding[attribute])
        return tuple(prefix)

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        """Delegate a prefix enumeration to the wrapped index."""
        return self.index.prefix_lookup(prefix)

    def count_prefix(self, prefix: tuple) -> int:
        """Delegate a prefix count to the wrapped index."""
        return self.index.count_prefix(prefix)

    def contains_binding(self, binding: dict[str, object]) -> bool:
        """Point-style check: do the bound values appear in this relation?

        All of this adapter's attributes must be bound; used by the Generic
        Join's intersection step on fully-covered relations.
        """
        prefix = self.extract_prefix(binding)
        if len(prefix) != self.index.arity:
            raise SchemaError(
                f"contains_binding on {self.relation.name!r} with unbound "
                f"attributes (bound prefix {prefix!r})"
            )
        return self.index.contains(prefix)
