"""Configuration for the Sonic index.

The C++ Sonic takes its parameters (key type, hash function, bucket size,
capacity) as compile-time template arguments (§4.2).  Here they live in a
:class:`SonicConfig` value object validated up front, so a misconfigured
index fails at construction, not mid-build.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

DEFAULT_BUCKET_SIZE = 8
DEFAULT_OVERALLOCATION = 2.0


@dataclass(frozen=True)
class SonicConfig:
    """Tuning parameters of one Sonic index.

    Parameters
    ----------
    capacity:
        Slots per level.  Must be at least ``expected_tuples`` (every tuple
        occupies exactly one slot per level) — use :meth:`for_tuples` to
        derive it from a tuple count and overallocation factor.  Rounded up
        to a whole number of buckets.
    bucket_size:
        Slots per bucket (the paper's Fig 17 sweep; default 8).
    seed:
        Hash seed, so adversarial tests can vary placement.
    """

    capacity: int = 1024
    bucket_size: int = DEFAULT_BUCKET_SIZE
    seed: int = 0

    def __post_init__(self):
        if self.bucket_size < 1:
            raise ConfigurationError(f"bucket_size must be >= 1, got {self.bucket_size}")
        if self.capacity < self.bucket_size:
            raise ConfigurationError(
                f"capacity {self.capacity} smaller than one bucket ({self.bucket_size})"
            )
        if self.capacity % self.bucket_size:
            # round up to whole buckets; frozen dataclass needs object.__setattr__
            buckets = -(-self.capacity // self.bucket_size)
            object.__setattr__(self, "capacity", buckets * self.bucket_size)

    @property
    def num_buckets(self) -> int:
        return self.capacity // self.bucket_size

    @classmethod
    def for_tuples(cls, expected_tuples: int, bucket_size: int = DEFAULT_BUCKET_SIZE,
                   overallocation: float = DEFAULT_OVERALLOCATION,
                   seed: int = 0) -> "SonicConfig":
        """Derive a config from an expected tuple count (the usual entry point).

        ``overallocation`` is the paper's *OF* factor (§3.5): levels are
        sized ``OF × expected_tuples`` slots to keep probe chains (and thus
        patching) rare.  Values below ~1.2 work but patch heavily.
        """
        if expected_tuples < 1:
            raise ConfigurationError(f"expected_tuples must be >= 1, got {expected_tuples}")
        if overallocation < 1.0:
            raise ConfigurationError(
                f"overallocation must be >= 1.0 (every tuple needs a slot per "
                f"level), got {overallocation}"
            )
        capacity = max(int(expected_tuples * overallocation), bucket_size)
        return cls(capacity=capacity, bucket_size=bucket_size, seed=seed)
