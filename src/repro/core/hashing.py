"""Hash functions used by the index structures.

The paper standardizes on MurmurHash [2] for every hash-based index "to
provide an accurate comparison" (§5.4).  We do the same: every structure in
:mod:`repro.indexes` and the Sonic index itself route key hashing through
:func:`hash_key` below, which implements the 64-bit Murmur3 finalizer
(``fmix64``).  The finalizer is a full-avalanche bijection on 64-bit words,
which is exactly the property linear-probing tables need from integer keys;
for byte strings we run the full Murmur3 x64 128-bit core and keep the low
word.

Everything here is deterministic across processes (no ``PYTHONHASHSEED``
dependence), which the test-suite and benchmark harness rely on.
"""

from __future__ import annotations

MASK64 = 0xFFFFFFFFFFFFFFFF

_C1 = 0x87C37B91114253D5
_C2 = 0x4CF5AD432745937F


def fmix64(value: int) -> int:
    """Murmur3 64-bit finalizer: a full-avalanche mix of one 64-bit word."""
    value &= MASK64
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & MASK64
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & MASK64
    value ^= value >> 33
    return value


def _rotl64(value: int, shift: int) -> int:
    value &= MASK64
    return ((value << shift) | (value >> (64 - shift))) & MASK64


def murmur3_bytes(data: bytes, seed: int = 0) -> int:
    """Murmur3 x64-128 over ``data``, returning the low 64 bits.

    A faithful port of the reference ``MurmurHash3_x64_128``; only the first
    half of the 128-bit digest is returned since the indexes need a single
    word.
    """
    length = len(data)
    h1 = seed & MASK64
    h2 = seed & MASK64

    nblocks = length // 16
    for block in range(nblocks):
        offset = block * 16
        k1 = int.from_bytes(data[offset:offset + 8], "little")
        k2 = int.from_bytes(data[offset + 8:offset + 16], "little")

        k1 = (k1 * _C1) & MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & MASK64
        h1 ^= k1

        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & MASK64
        h1 = (h1 * 5 + 0x52DCE729) & MASK64

        k2 = (k2 * _C2) & MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & MASK64
        h2 ^= k2

        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & MASK64
        h2 = (h2 * 5 + 0x38495AB5) & MASK64

    tail = data[nblocks * 16:]
    k1 = 0
    k2 = 0
    if len(tail) > 8:
        k2 = int.from_bytes(tail[8:].ljust(8, b"\x00"), "little")
        k2 = (k2 * _C2) & MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * _C1) & MASK64
        h2 ^= k2
    if tail:
        k1 = int.from_bytes(tail[:8].ljust(8, b"\x00"), "little")
        k1 = (k1 * _C1) & MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * _C2) & MASK64
        h1 ^= k1

    h1 ^= length
    h2 ^= length
    h1 = (h1 + h2) & MASK64
    h2 = (h2 + h1) & MASK64
    h1 = fmix64(h1)
    h2 = fmix64(h2)
    h1 = (h1 + h2) & MASK64
    return h1


def hash_key(key: object, seed: int = 0) -> int:
    """Hash a single key (int or str/bytes) to a 64-bit word.

    Integers go through :func:`fmix64` (with the seed mixed in); strings and
    byte strings go through the full Murmur3 core.  This is the one hash
    function shared by every index in the library, mirroring the paper's
    use of Murmur everywhere.
    """
    if isinstance(key, bool):  # bool is an int subclass; normalize first
        key = int(key)
    if isinstance(key, int):
        return fmix64((key ^ (seed * 0x9E3779B97F4A7C15)) & MASK64)
    if isinstance(key, str):
        return murmur3_bytes(key.encode("utf-8"), seed)
    if isinstance(key, bytes):
        return murmur3_bytes(key, seed)
    raise TypeError(f"unhashable key type for index hashing: {type(key)!r}")


def hash_tuple(values: tuple, seed: int = 0) -> int:
    """Hash a tuple of keys by chaining :func:`hash_key` over its elements."""
    state = seed & MASK64
    for value in values:
        state = fmix64(state ^ hash_key(value, seed))
    return state
