"""Sonic — the paper's core contribution (§3) and its supporting pieces."""

from repro.core.adapter import IndexAdapter
from repro.core.config import DEFAULT_BUCKET_SIZE, DEFAULT_OVERALLOCATION, SonicConfig
from repro.core.hashing import fmix64, hash_key, hash_tuple, murmur3_bytes
from repro.core.locks import DEFAULT_GRANULARITY, KeyRangeLockManager
from repro.core.memory import sonic_bytes_per_tuple, sonic_space_estimate
from repro.core.parallel import ParallelSonicBuilder, parallel_build
from repro.core.sonic import SonicIndex

__all__ = [
    "DEFAULT_BUCKET_SIZE",
    "DEFAULT_GRANULARITY",
    "DEFAULT_OVERALLOCATION",
    "IndexAdapter",
    "KeyRangeLockManager",
    "ParallelSonicBuilder",
    "SonicConfig",
    "SonicIndex",
    "fmix64",
    "hash_key",
    "hash_tuple",
    "murmur3_bytes",
    "parallel_build",
    "sonic_bytes_per_tuple",
    "sonic_space_estimate",
]
