"""Environment-variable knob parsing, shared across the execution stack.

Every runtime toggle in this repo follows the same convention: an
explicit argument wins, otherwise the environment decides, and the
falsy spellings are exactly ``"" / 0 / false / no / off`` (case- and
whitespace-insensitive).  ``joins.executor`` and ``repro.engine`` both
resolve ``REPRO_DEBUG`` / ``REPRO_PROFILE`` / ``REPRO_TRACE_OUT``
through these helpers so the spellings can never drift apart.
"""

from __future__ import annotations

import os

#: spellings parsed as False (anything else truthy), per the repo convention
FALSY = ("", "0", "false", "no", "off")


def env_flag(name: str, default: bool = False) -> bool:
    """Boolean environment knob: unset means ``default``."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in FALSY


def resolve_flag(explicit: "bool | None", env_name: str,
                 default: bool = False) -> bool:
    """The explicit argument when given, else the environment knob."""
    if explicit is not None:
        return explicit
    return env_flag(env_name, default)


def env_int(name: str, default: int = 0) -> int:
    """Integer environment knob: unset/empty means ``default``.

    A non-integer spelling raises ``ValueError`` naming the variable —
    a silently-ignored ``REPRO_WORKERS=four`` would masquerade as the
    single-process default.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw, 10)
    except ValueError:
        raise ValueError(
            f"environment variable {name}={raw!r} is not an integer"
        ) from None


def resolve_int(explicit: "int | None", env_name: str,
                default: int = 0) -> int:
    """The explicit argument when given, else the environment knob."""
    if explicit is not None:
        return explicit
    return env_int(env_name, default)


def env_str(name: str, default: str = "") -> str:
    """String environment knob, stripped; empty/unset means ``default``."""
    raw = os.environ.get(name, "").strip()
    return raw or default


def resolve_str(explicit: "str | None", env_name: str,
                default: str = "") -> str:
    """The explicit argument when given (non-empty), else the environment."""
    if explicit:
        return explicit
    return env_str(env_name, default)
