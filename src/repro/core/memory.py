"""Sonic's space model (§3.5 of the paper).

For a tuple ``t(a_1 … a_k)`` with per-component sizes ``DTS_i`` and an
overallocation factor *OF*, the paper states Sonic allocates::

    OF × ( Σ_{i=1}^{k-1} DTS_i      # keys at the k-1 levels
         + (k-2) × 8B               # next-bucket offsets (all but the last level)
         + Σ_{i=2}^{k-2} DTS_i      # patch keys at the inner levels
         + Σ_{i=1}^{k}  DTS_i       # the full tuple at the last level
         + 1b )                     # patch bit

per tuple.  :func:`sonic_bytes_per_tuple` evaluates that formula and
:func:`sonic_space_estimate` scales it to a table, which Fig 18 plots;
:meth:`repro.core.sonic.SonicIndex.memory_usage` reports the *actual*
allocation of a built index for comparison against this model.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError

POINTER_BYTES = 8
PREFIX_COUNTER_BYTES = 4


def sonic_bytes_per_tuple(component_sizes: Sequence[int],
                          include_counters: bool = False) -> float:
    """Paper's §3.5 per-tuple byte count (before overallocation).

    ``component_sizes`` is ``DTS_1 … DTS_k``.  The paper's formula omits
    the prefix counters; pass ``include_counters=True`` to add the 4-byte
    counter per non-last level that the implementation actually keeps.
    """
    k = len(component_sizes)
    if k < 2:
        raise ConfigurationError("the §3.5 formula is defined for k >= 2 columns")
    keys = sum(component_sizes[:k - 1])                 # Σ_{i=1}^{k-1}
    pointers = (k - 2) * POINTER_BYTES
    patch_keys = sum(component_sizes[1:k - 2])          # Σ_{i=2}^{k-2}
    tuple_payload = sum(component_sizes)                # Σ_{i=1}^{k}
    patch_bit = 1 / 8
    total = keys + pointers + patch_keys + tuple_payload + patch_bit
    if include_counters:
        total += (k - 2) * PREFIX_COUNTER_BYTES
    return total


def sonic_space_estimate(tuple_count: int, component_sizes: Sequence[int],
                         overallocation: float = 1.0,
                         include_counters: bool = False) -> int:
    """Model bytes for ``tuple_count`` tuples at overallocation *OF* (Fig 18)."""
    per_tuple = sonic_bytes_per_tuple(component_sizes, include_counters)
    return int(overallocation * tuple_count * per_tuple)
