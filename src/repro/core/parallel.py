"""Parallel Sonic build (§3.4.2, Fig 16).

The paper builds Sonic concurrently with key-range locks per level.  This
module reproduces the scheme with real threads: the input is processed by
``num_threads`` workers, each insert acquiring

* the stripe lock of its first-level home slot,
* the allocator lock of a level whenever a fresh bucket is reserved,
* the stripe lock of the designated bucket at every deeper level,

one lock at a time (locks are released before descending, so lock order is
strictly by level and deadlock-free).

CPython's GIL serializes the actual memory writes, so wall-clock speedup
is not observable here; what *is* faithfully reproduced and measured is
the locking protocol (correctness under concurrency is tested by building
the same relation sequentially and in parallel and comparing contents) and
the contention profile (lock acquisitions per stripe), which
:mod:`repro.hardware.cost_model` converts into simulated thread scaling.
This module is therefore **protocol-only**: the repo's canonical
measured parallel numbers are the multiprocess sharded execution path
(:mod:`repro.parallel`, ``join(..., parallel=K)``), which escapes the
GIL entirely and whose wall-clock scaling is recorded in the
``parallel`` section of ``BENCH_generic_join.json``.  See DESIGN.md §1.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

from repro.core.hashing import hash_key
from repro.core.locks import DEFAULT_GRANULARITY, KeyRangeLockManager
from repro.core.sonic import SonicIndex
from repro.errors import ConfigurationError


class ParallelSonicBuilder:
    """Builds a :class:`SonicIndex` with ``num_threads`` workers."""

    def __init__(self, index: SonicIndex, num_threads: int = 4,
                 granularity: int = DEFAULT_GRANULARITY):
        if num_threads < 1:
            raise ConfigurationError(f"num_threads must be >= 1, got {num_threads}")
        self.index = index
        self.num_threads = num_threads
        self.locks = KeyRangeLockManager(
            num_levels=index.num_levels,
            capacity=index.config.capacity,
            granularity=granularity,
        )
        self._errors: list[BaseException] = []

    def build(self, rows: Sequence[tuple]) -> SonicIndex:
        """Insert every row using the worker pool; returns the built index."""
        if self.num_threads == 1:
            for row in rows:
                self._locked_insert(row)
            return self.index

        chunks = [rows[i::self.num_threads] for i in range(self.num_threads)]
        workers = [
            threading.Thread(target=self._worker, args=(chunk,), daemon=True)
            for chunk in chunks if chunk
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        if self._errors:
            raise self._errors[0]
        return self.index

    def _worker(self, rows: Sequence[tuple]) -> None:
        try:
            for row in rows:
                self._locked_insert(row)
        except BaseException as exc:  # propagate to the coordinating thread
            self._errors.append(exc)

    def _locked_insert(self, row: tuple) -> None:
        """One insert under the key-range protocol.

        The paper's protocol locks the touched range at each level; the
        Python rendering locks the range of the *home* slot for the whole
        per-level operation.  Because a single lock covers ``granularity``
        consecutive slots and probe chains are kept far shorter than that
        by overallocation, a chain crossing a stripe boundary is rare; the
        equivalence tests in ``tests/core/test_parallel.py`` verify the
        outcome matches a sequential build exactly.
        """
        index = self.index
        home = hash_key(row[0], index.config.seed) % index.config.capacity
        lock = self.locks.lock_for(0, home)
        with lock:
            # Sonic's insert descends through all levels; serialize the
            # descent under the first-level stripe plus the per-level
            # allocator locks (taken inside insert via the allocator shim).
            index.insert(row)

    def contention_profile(self) -> dict[str, float]:
        """Lock statistics for the Fig 16 cost model."""
        total = self.locks.total_acquisitions()
        return {
            "acquisitions": float(total),
            "stripes": float(self.locks.stripes_per_level),
            "granularity": float(self.locks.granularity),
            "threads": float(self.num_threads),
        }


def parallel_build(rows: Sequence[tuple], arity: int, num_threads: int,
                   config=None, granularity: int = DEFAULT_GRANULARITY,
                   ) -> tuple[SonicIndex, dict[str, float]]:
    """Convenience wrapper: build a Sonic index in parallel, return profile."""
    index = SonicIndex(arity, config=config)
    builder = ParallelSonicBuilder(index, num_threads=num_threads,
                                   granularity=granularity)
    builder.build(rows)
    return index, builder.contention_profile()
