"""The Sonic index structure (§3 of the paper).

Sonic stores a ``k``-column tuple across ``k-1`` *levels* (Fig 3).  Each
level is one flat, single-allocation open-addressing array divided into
fixed-size buckets:

* **first level** — a plain hash table over the first attribute: the slot
  is ``hash(a_1) mod capacity``, probed linearly;
* **inner levels** — the parent entry's *next bucket* offset designates a
  bucket; the slot inside it is ``hash(a_i) mod bucket_size``, with linear
  probing that may *spill* into subsequent buckets;
* **last level** — keyed by the second-to-last attribute and storing the
  full tuple alongside it, so the final attribute needs no extra level and
  every remaining false positive is eliminated by payload verification.

Entries at non-last levels carry a *prefix counter* (the number of stored
tuples sharing the path down to this entry — what ``count prefix`` reads)
and the next-bucket offset.

**Patching (§3.3).**  A bucket that receives a spilled entry now mixes
children of different parents; the bucket's *patch bit* is set and the
spilled entry records its parent key in the *patch key* array.  Entries
resident in their own home bucket keep a null patch key — the paper's
Fig 3 example shows exactly this (the spilled ``44`` gets patch key 87,
the resident ``73`` gets the null key 0) — and resolve their parent through
the bucket's *owner* (the parent that the bucket was originally allocated
to).  Lookups therefore accept an entry when its key matches **and** its
effective parent (patch key if set, else bucket owner) equals the probe's
parent; a false positive can still survive when *grandparents* differ
(patch keys replicate only the immediately preceding level, §3.3) and is
eliminated at the last level against the stored tuple.

The structure is deliberately static: levels are allocated once at the
configured capacity and never rehash (§3.1 lists rehashing as a drawback
of hierarchical hash tables).  Overflowing the configured capacity raises
:class:`~repro.errors.CapacityError`.

Instrumentation hooks used by the paper's microarchitectural experiments:

* an optional :class:`~repro.hardware.memtrace.MemoryTracer` receives the
  synthetic address of every key/patch-bit/patch-key/payload touch
  (Figs 10–12 drive a cache simulator with these traces);
* :meth:`SonicIndex.force_patch_fraction` artificially patches a fraction
  of buckets, reproducing the Fig 10/12 setup;
* :meth:`SonicIndex.patch_stats` reports the patched-bucket ratio the
  paper quotes (~10 % at the second level).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import ClassVar

from repro.core.config import SonicConfig
from repro.core.hashing import hash_key
from repro.errors import CapacityError, ConfigurationError, SchemaError
from repro.indexes.base import (
    CursorBatchCursor,
    PrefixCursor,
    TupleIndex,
    bulk_columns,
    sorted_unique_rows,
)

_NO_OWNER = object()  # bucket not yet allocated to any parent
_NO_PATCH = object()  # entry resident in its home bucket (null patch key)


class _Level:
    """One Sonic level: parallel arrays over ``capacity`` slots.

    ``keys[s] is None`` marks an empty slot (stored keys are ints/strs).
    """

    __slots__ = (
        "index", "is_first", "is_last", "capacity", "bucket_size",
        "num_buckets", "keys", "prefix_count", "next_bucket", "rows",
        "patch_bits", "patch_keys", "bucket_owner", "bucket_free",
        "alloc_frontier", "used_slots", "spilled", "shared",
    )

    def __init__(self, index: int, config: SonicConfig, is_first: bool, is_last: bool):
        self.index = index
        self.is_first = is_first
        self.is_last = is_last
        self.capacity = config.capacity
        self.bucket_size = config.bucket_size
        self.num_buckets = config.num_buckets
        self.keys: list = [None] * self.capacity
        # Counters: inner levels count per-slot subtrees (§3.4.1).  The
        # last level stores one payload per slot, but its *head slots*
        # (the first (key, parent)-matching slot in probe order — stable,
        # since slots never free) carry the per-node tuple count so the
        # join's seed selection stays O(probe) instead of O(chain).
        self.prefix_count = [0] * self.capacity
        self.next_bucket = None if is_last else [0] * self.capacity
        self.rows: list = [None] * self.capacity if is_last else None
        inner = not is_first
        # patch structures exist wherever a designated-bucket probe can
        # spill: every level except the first (the last level keeps them
        # for probe disambiguation even though payloads re-verify).
        self.patch_bits = bytearray(self.num_buckets) if inner else None
        self.patch_keys: list = [_NO_PATCH] * self.capacity if inner else None
        self.bucket_owner: list = [_NO_OWNER] * self.num_buckets if inner else None
        self.bucket_free = [self.bucket_size] * self.num_buckets
        self.alloc_frontier = 0
        self.used_slots = 0
        # merge-possibility markers: probe chains of different parents can
        # only overlap after a spill or once the allocator shares buckets;
        # when neither happened, prefix counters are provably exact.
        self.spilled = False
        self.shared = False


class SonicIndex(TupleIndex):
    """The Sonic hash table (Fig 3): fast build *and* fast prefix lookups."""

    NAME: ClassVar[str] = "sonic"
    SUPPORTS_BATCH: ClassVar[bool] = True
    SUPPORTS_BULK_BUILD: ClassVar[bool] = True

    def __init__(self, arity: int, config: SonicConfig | None = None,
                 capacity: int | None = None, bucket_size: int | None = None,
                 seed: int | None = None, tracer=None):
        super().__init__(arity)
        if arity < 2:
            raise ConfigurationError(
                "Sonic indexes tuples of >= 2 columns (a 1-column relation "
                "needs no prefix structure; use a hash set)"
            )
        if config is None:
            config = SonicConfig()
        overrides = {}
        if capacity is not None:
            overrides["capacity"] = capacity
        if bucket_size is not None:
            overrides["bucket_size"] = bucket_size
        if seed is not None:
            overrides["seed"] = seed
        if overrides:
            config = SonicConfig(
                capacity=overrides.get("capacity", config.capacity),
                bucket_size=overrides.get("bucket_size", config.bucket_size),
                seed=overrides.get("seed", config.seed),
            )
        self.config = config
        self.tracer = tracer
        self.num_levels = arity - 1
        self._levels = [
            _Level(i, config, is_first=(i == 0), is_last=(i == self.num_levels - 1))
            for i in range(self.num_levels)
        ]
        self._seed = config.seed

    # ------------------------------------------------------------------
    # Tracing helpers (no-ops unless a tracer is attached)
    # ------------------------------------------------------------------
    def _touch(self, level: _Level, region: str, slot: int, size: int = 8) -> None:
        if self.tracer is not None:
            self.tracer.record(level.index, region, slot, size)

    # ------------------------------------------------------------------
    # Insert (§3.4.1, Alg. 2)
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        path_slots: list[tuple[_Level, int]] = []

        level = self._levels[0]
        key = row[0]
        if level.is_last:
            # two-column table: the single level is first and last at once
            is_new = self._insert_last(level, self._first_slot(level, key), row)
        else:
            slot, found = self._probe_first(level, key)
            if not found:
                self._claim(level, slot, key)
                level.next_bucket[slot] = self._allocate_bucket(self._levels[1], key)
            path_slots.append((level, slot))
            designated = level.next_bucket[slot]
            parent_key = key
            is_new = self._insert_descend(1, designated, parent_key, row, path_slots)

        if is_new:
            self._size += 1
            for lvl, slot in path_slots:
                lvl.prefix_count[slot] += 1
        return None

    def _insert_descend(self, level_index: int, designated: int, parent_key,
                        row: tuple, path_slots: list) -> bool:
        level = self._levels[level_index]
        key = row[level_index]
        if level.is_last:
            start = designated * level.bucket_size + (
                hash_key(key, self._seed) % level.bucket_size)
            return self._insert_last(level, start, row,
                                     designated=designated, parent_key=parent_key)
        slot, found = self._probe_inner(level, designated, key, parent_key)
        if not found:
            self._claim(level, slot, key, designated=designated, parent_key=parent_key)
            level.next_bucket[slot] = self._allocate_bucket(
                self._levels[level_index + 1], key)
        path_slots.append((level, slot))
        return self._insert_descend(level_index + 1, level.next_bucket[slot],
                                    key, row, path_slots)

    def _insert_last(self, level: _Level, start: int, row: tuple,
                     designated: int | None = None, parent_key=None) -> bool:
        """Find-or-insert the full tuple at the last level; True if new.

        In the two-column case the level doubles as the first level and
        maintains head-slot prefix counters: the first slot in probe order
        holding the key accumulates the key's tuple count (heads are
        stable — slots before a head are occupied forever).
        """
        capacity = level.capacity
        key = row[level.index]
        check_parent = level.bucket_owner is not None
        slot = start % capacity
        head = -1
        for _ in range(capacity):
            if self.tracer is not None:
                self._touch(level, "key", slot)
            existing = level.keys[slot]
            if existing is None:
                level.keys[slot] = key
                level.rows[slot] = row
                self._after_claim(level, slot, designated, parent_key)
                level.prefix_count[head if head >= 0 else slot] += 1
                return True
            if existing == key:
                if head < 0 and (not check_parent or self._parent_matches(
                        level, slot, parent_key)):
                    head = slot
                if self.tracer is not None:
                    self._touch(level, "row", slot, 8 * self.arity)
                if level.rows[slot] == row:
                    return False  # duplicate tuple
            slot = (slot + 1) % capacity
        raise CapacityError(
            f"Sonic level {level.index} full (capacity {capacity}); "
            f"configure a larger capacity/overallocation"
        )

    def _first_slot(self, level: _Level, key) -> int:
        return hash_key(key, self._seed) % level.capacity

    def _probe_first(self, level: _Level, key) -> tuple[int, bool]:
        """Probe the first level for ``key``; (slot, found)."""
        capacity = level.capacity
        slot = self._first_slot(level, key)
        for _ in range(capacity):
            if self.tracer is not None:
                self._touch(level, "key", slot)
            existing = level.keys[slot]
            if existing is None:
                return slot, False
            if existing == key:
                return slot, True
            slot = (slot + 1) % capacity
        raise CapacityError(
            f"Sonic level 0 full (capacity {capacity}); "
            f"configure a larger capacity/overallocation"
        )

    def _probe_inner(self, level: _Level, designated: int, key,
                     parent_key) -> tuple[int, bool]:
        """Probe an inner level from the designated bucket; (slot, found)."""
        capacity = level.capacity
        bucket_size = level.bucket_size
        slot = designated * bucket_size + hash_key(key, self._seed) % bucket_size
        for _ in range(capacity):
            if self.tracer is not None:
                self._touch(level, "key", slot)
            existing = level.keys[slot]
            if existing is None:
                return slot, False
            if existing == key and self._parent_matches(level, slot, parent_key):
                return slot, True
            slot = (slot + 1) % capacity
        raise CapacityError(
            f"Sonic level {level.index} full (capacity {capacity}); "
            f"configure a larger capacity/overallocation"
        )

    def _parent_matches(self, level: _Level, slot: int, parent_key) -> bool:
        bucket = slot // level.bucket_size
        if self.tracer is not None:
            self._touch(level, "patch_bit", bucket, 1)
        if level.patch_bits[bucket]:
            if self.tracer is not None:
                self._touch(level, "patch_key", slot)
            patch = level.patch_keys[slot]
            if patch is not _NO_PATCH:
                return patch == parent_key
        return level.bucket_owner[bucket] == parent_key

    def _claim(self, level: _Level, slot: int, key,
               designated: int | None = None, parent_key=None) -> None:
        level.keys[slot] = key
        self._after_claim(level, slot, designated, parent_key)

    def _after_claim(self, level: _Level, slot: int,
                     designated: int | None, parent_key) -> None:
        bucket = slot // level.bucket_size
        level.bucket_free[bucket] -= 1
        level.used_slots += 1
        if level.bucket_owner is None:
            return  # first level: no parent disambiguation needed
        if designated is not None and bucket != designated:
            level.spilled = True
        owner = level.bucket_owner[bucket]
        if owner is _NO_OWNER:
            level.bucket_owner[bucket] = parent_key
        elif owner != parent_key:
            # the bucket now mixes parents: patch it (§3.3)
            level.patch_bits[bucket] = 1
            level.patch_keys[slot] = parent_key

    def _allocate_bucket(self, level: _Level, parent_key) -> int:
        """Reserve a bucket for a new parent entry (§3.4.1's bump allocator).

        Hands out fresh buckets while any remain (keeping patching rare);
        once the frontier is exhausted, the parent key is *hashed* to a
        bucket — sharing is then uniform across the level, so probe chains
        stay short at any fill level, and the patch mechanism disambiguates
        the mixed buckets.
        """
        while level.alloc_frontier < level.num_buckets:
            bucket = level.alloc_frontier
            level.alloc_frontier += 1
            if level.bucket_free[bucket]:
                return bucket
        if level.used_slots >= level.capacity:
            raise CapacityError(
                f"Sonic level {level.index} has no free buckets "
                f"(capacity {level.capacity}); configure a larger capacity"
            )
        level.shared = True
        return hash_key(parent_key, self._seed ^ 0xB0C4E7) % level.num_buckets

    # ------------------------------------------------------------------
    # Columnar bulk build (§3.4.1, amortized across sorted groups)
    # ------------------------------------------------------------------
    def build_bulk(self, columns) -> None:
        """Build from columns: sort once, then insert group-at-a-time.

        The columns (one array per component, pre-permuted into index
        order) are lexsorted and deduplicated with vectorized numpy ops,
        and the rows go in in canonical (sorted) order, which makes every
        run of tuples sharing a key prefix *contiguous*: the root-to-leaf
        probe chain is resolved once per distinct prefix and reused for
        the whole run, where :meth:`insert` re-hashes and re-walks the
        chain for every tuple — including a full duplicate scan of the
        group's probe run.  The resulting structure is byte-identical to
        sequential :meth:`insert` of the same deduplicated rows in sorted
        order: slots are claimed by the exact probes insert would issue,
        and no slot is ever freed during a build, so the cached chain
        state can never go stale within a run.

        Falls back to per-row inserts when a tracer is attached (traces
        must reflect per-insert touches), when the index already holds
        tuples, or when the values admit no total order.
        """
        arrays = bulk_columns(self.arity, columns)
        rows = None
        if self.tracer is None and self._size == 0:
            rows = sorted_unique_rows(arrays)
        if rows is None:
            self._insert_columns(arrays)
            return
        if not rows:
            return

        levels = self._levels
        num_levels = self.num_levels
        last = levels[-1]
        capacity = last.capacity
        keys = last.keys
        stored = last.rows
        counts = last.prefix_count
        check_parent = last.bucket_owner is not None
        seed = self._seed
        # cached chain state for the current prefix: the resolved slot per
        # inner level and the designated child bucket hanging under it
        inner_slots = [0] * (num_levels - 1)
        child_desig = [0] * (num_levels - 1)
        # last-level group state (rows sharing every key component): the
        # stable head slot that accumulates the prefix count, and the slot
        # after the most recent claim, where probing resumes
        lg_head = -1
        lg_next = 0
        lg_desig: "int | None" = None
        lg_parent = None
        prev = None

        for row in rows:
            keep = 0
            if prev is not None:
                while keep < num_levels and row[keep] == prev[keep]:
                    keep += 1
            prev = row
            if keep < num_levels:
                # chain diverged: re-resolve inner levels from the first
                # changed component, then open a new last-level group
                for i in range(keep, num_levels - 1):
                    level = levels[i]
                    key = row[i]
                    if i == 0:
                        slot, found = self._probe_first(level, key)
                        if not found:
                            self._claim(level, slot, key)
                            level.next_bucket[slot] = self._allocate_bucket(
                                levels[1], key)
                    else:
                        designated = child_desig[i - 1]
                        slot, found = self._probe_inner(
                            level, designated, key, row[i - 1])
                        if not found:
                            self._claim(level, slot, key,
                                        designated=designated,
                                        parent_key=row[i - 1])
                            level.next_bucket[slot] = self._allocate_bucket(
                                levels[i + 1], key)
                    inner_slots[i] = slot
                    child_desig[i] = level.next_bucket[slot]
                key = row[last.index]
                if num_levels == 1:
                    lg_desig = None
                    lg_parent = None
                    slot = hash_key(key, seed) % capacity
                else:
                    lg_desig = child_desig[num_levels - 2]
                    lg_parent = row[last.index - 1]
                    slot = (lg_desig * last.bucket_size
                            + hash_key(key, seed) % last.bucket_size)
                # first placement of the group: the full _insert_last walk,
                # tracking the head slot (no duplicate scan — dedupe above
                # guarantees the tuple is new)
                head = -1
                placed = False
                for _ in range(capacity):
                    existing = keys[slot]
                    if existing is None:
                        keys[slot] = key
                        stored[slot] = row
                        self._after_claim(last, slot, lg_desig, lg_parent)
                        lg_head = head if head >= 0 else slot
                        counts[lg_head] += 1
                        lg_next = (slot + 1) % capacity
                        placed = True
                        break
                    if (existing == key and head < 0
                            and (not check_parent or self._parent_matches(
                                last, slot, lg_parent))):
                        head = slot
                    slot = (slot + 1) % capacity
                if not placed:
                    raise CapacityError(
                        f"Sonic level {last.index} full (capacity {capacity}); "
                        f"configure a larger capacity/overallocation"
                    )
            else:
                # same full key prefix as the previous row: chain and group
                # head unchanged, resume probing where the last claim left
                # off (the chain prefix is occupied and immutable)
                key = row[last.index]
                slot = lg_next
                placed = False
                for _ in range(capacity):
                    if keys[slot] is None:
                        keys[slot] = key
                        stored[slot] = row
                        self._after_claim(last, slot, lg_desig, lg_parent)
                        counts[lg_head] += 1
                        lg_next = (slot + 1) % capacity
                        placed = True
                        break
                    slot = (slot + 1) % capacity
                if not placed:
                    raise CapacityError(
                        f"Sonic level {last.index} full (capacity {capacity}); "
                        f"configure a larger capacity/overallocation"
                    )
            self._size += 1
            for i in range(num_levels - 1):
                levels[i].prefix_count[inner_slots[i]] += 1
        return None

    # ------------------------------------------------------------------
    # Lookups (§3.4.3, Alg. 3)
    # ------------------------------------------------------------------
    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        for _ in self._lookup(row):
            return True
        return False

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        prefix = self._check_prefix(tuple(prefix))
        return self._lookup(prefix)

    def count_prefix(self, prefix: tuple) -> int:
        """Exact matching-tuple count.

        Uses the O(prefix) prefix counters (§3.4.3) whenever they are
        provably exact: always for prefixes of length ≤ 2 (the patch/owner
        check fully disambiguates one level of ancestry), and for longer
        prefixes as long as no intermediate level has ever spilled an entry
        or shared an allocated bucket (without chain overlap, probe paths
        of different ancestries can never merge).  Otherwise it falls back
        to payload-verified enumeration, trading the paper's O(i) bound for
        guaranteed exactness.  :meth:`approx_count_prefix` always reads the
        raw counter, matching the paper's behaviour unconditionally.
        """
        prefix = self._check_prefix(tuple(prefix))
        width = len(prefix)
        if width == 0:
            return self._size
        if width == 1 and self.num_levels == 1:
            # two-column case: head-slot counters are always exact (single
            # level, exact key comparison, duplicate-checked inserts)
            return self._head_count(prefix[0])
        if width <= self.num_levels - 1 and self._counters_exact_through(width):
            return self.approx_count_prefix(prefix)
        count = 0
        for _ in self._lookup(prefix):
            count += 1
        return count

    def _head_count(self, key) -> int:
        """Per-key tuple count from the arity-2 level's head-slot counter."""
        level = self._levels[0]
        capacity = level.capacity
        slot = self._first_slot(level, key)
        for _ in range(capacity):
            existing = level.keys[slot]
            if existing is None:
                return 0
            if existing == key:
                if self.tracer is not None:
                    self._touch(level, "count", slot, 4)
                return level.prefix_count[slot]
            slot = (slot + 1) % capacity
        return 0

    def approx_count_prefix(self, prefix: tuple) -> int:
        """Raw prefix-counter read (the paper's count-prefix, §3.4.3).

        O(len(prefix)).  May overcount when distinct ancestries merged
        through probe-chain overlap (grandparent-level false positives,
        §3.3); never undercounts.  Only defined for prefixes short enough
        to end at a counter-bearing level; longer prefixes are counted by
        scanning the final bucket chain.
        """
        prefix = self._check_prefix(tuple(prefix))
        width = len(prefix)
        if width == 0:
            return self._size
        if width == 1 and self.num_levels == 1:
            return self._head_count(prefix[0])
        if width > self.num_levels - 1:
            count = 0
            for _ in self._lookup(prefix):
                count += 1
            return count
        slot = self._descend_exact(prefix)
        if slot is None:
            return 0
        level = self._levels[width - 1]
        self._touch(level, "count", slot, 4)
        return level.prefix_count[slot]

    def _counters_exact_through(self, width: int) -> bool:
        """Can a counter at level ``width-1`` have absorbed foreign tuples?

        Merging at level *i* requires a probe chain that overlaps a foreign
        bucket, which in turn requires a spill or allocator sharing at that
        level; levels 0 and 1 are immune (key plus immediate parent fully
        identify a length-2 path).
        """
        for level in self._levels[2:width]:
            if level.spilled or level.shared:
                return False
        return True

    def _descend_exact(self, prefix: tuple) -> int | None:
        """Follow ``prefix`` through levels 0..len(prefix)-1; final slot or None.

        Lookup probes replicate insert probes exactly (same start slot,
        same order, same match predicate), so this lands on precisely the
        slot inserts for this path used.
        """
        level = self._levels[0]
        slot, found = self._probe_first(level, prefix[0])
        if not found:
            return None
        parent_key = prefix[0]
        for position in range(1, len(prefix)):
            designated = level.next_bucket[slot]
            level = self._levels[position]
            slot, found = self._probe_inner(level, designated, prefix[position],
                                            parent_key)
            if not found:
                return None
            parent_key = prefix[position]
        return slot

    def _lookup(self, prefix: tuple) -> Iterator[tuple]:
        """Core enumeration: tuples matching ``prefix`` (any length 0..k)."""
        width = len(prefix)
        level = self._levels[0]

        if width == 0:
            # full scan: enumerate every first-level entry
            if level.is_last:
                for slot in range(level.capacity):
                    if level.keys[slot] is not None:
                        yield level.rows[slot]
                return
            for slot in range(level.capacity):
                if level.keys[slot] is not None:
                    yield from self._enumerate(1, level.next_bucket[slot],
                                               (level.keys[slot],), prefix)
            return

        if level.is_last:
            # two-column index: scan the probe chain of the first key
            yield from self._scan_last_first_level(level, prefix)
            return

        slot, found = self._probe_first(level, prefix[0])
        if not found:
            return
        parent_key = prefix[0]
        designated = level.next_bucket[slot]
        # follow the bound part of the prefix through inner levels
        position = 1
        while position < width and position < self.num_levels - 1:
            level = self._levels[position]
            slot, found = self._probe_inner(level, designated, prefix[position],
                                            parent_key)
            if not found:
                return
            parent_key = prefix[position]
            designated = level.next_bucket[slot]
            position += 1
        yield from self._enumerate(position, designated, prefix[:position], prefix)

    def _scan_last_first_level(self, level: _Level, prefix: tuple) -> Iterator[tuple]:
        """Arity-2 case: the first level stores payloads directly."""
        width = len(prefix)
        capacity = level.capacity
        slot = self._first_slot(level, prefix[0])
        for _ in range(capacity):
            if self.tracer is not None:
                self._touch(level, "key", slot)
            existing = level.keys[slot]
            if existing is None:
                return
            if existing == prefix[0]:
                row = level.rows[slot]
                if self.tracer is not None:
                        self._touch(level, "row", slot, 8 * self.arity)
                if row[:width] == prefix:
                    yield row
            slot = (slot + 1) % capacity

    def _enumerate(self, level_index: int, designated: int, path: tuple,
                   prefix: tuple) -> Iterator[tuple]:
        """Enumerate the subtree below a designated bucket (Alg. 3 lines 11-26).

        ``path`` holds the key values bound at levels ``0..level_index-1``
        (prefix components plus keys chosen while enumerating).  At the
        last level every candidate payload is verified against the full
        path — the "stored payload" verification that eliminates any false
        positives surviving the patch checks (§3.3).
        """
        level = self._levels[level_index]
        width = len(prefix)
        parent_key = path[-1]
        if not (level.spilled or level.shared):
            # fast path: the level never spilled an entry nor shared a
            # bucket, so the designated bucket holds exactly this parent's
            # children and nothing else — no patch checks, no re-probing.
            base = designated * level.bucket_size
            bound_key = prefix[level_index] if level_index < width else None
            for slot in range(base, base + level.bucket_size):
                key = level.keys[slot]
                if key is None:
                    continue
                if bound_key is not None and key != bound_key:
                    continue
                if level.is_last:
                    row = level.rows[slot]
                    if self.tracer is not None:
                        self._touch(level, "row", slot, 8 * self.arity)
                    if row[:level_index] == path and row[:width] == prefix:
                        yield row
                else:
                    yield from self._enumerate(level_index + 1,
                                               level.next_bucket[slot],
                                               path + (key,), prefix)
            return
        if level.is_last:
            bound_key = prefix[level_index] if level_index < width else None
            for slot in self._bucket_chain(level, designated):
                key = level.keys[slot]
                if key is None:
                    continue
                if bound_key is not None and key != bound_key:
                    continue
                if not self._parent_matches(level, slot, parent_key):
                    continue
                row = level.rows[slot]
                if self.tracer is not None:
                        self._touch(level, "row", slot, 8 * self.arity)
                if row[:level_index] == path and row[:width] == prefix:
                    yield row
            return
        # Inner level: the chain may contain several slots with the same
        # (key, parent) pair when foreign ancestries merged through probe
        # overlap; only the slot insert's deterministic probe chose is
        # authoritative (descending foreign copies would double-yield), so
        # each distinct key is re-probed once from the designated bucket.
        seen: set = set()
        for slot in self._bucket_chain(level, designated):
            key = level.keys[slot]
            if key is None or key in seen:
                continue
            if not self._parent_matches(level, slot, parent_key):
                continue
            seen.add(key)
            true_slot, found = self._probe_inner(level, designated, key, parent_key)
            if not found:
                continue
            yield from self._enumerate(level_index + 1,
                                       level.next_bucket[true_slot],
                                       path + (key,), prefix)

    def _bucket_chain(self, level: _Level, bucket: int) -> Iterator[int]:
        """Slots possibly holding entries designated to ``bucket``.

        Spilled entries probe linearly from inside the bucket, so they live
        between the bucket's base slot and the first empty slot at or after
        the bucket's *last* slot (no probe can have crossed such a slot —
        the structure never deletes).
        """
        capacity = level.capacity
        base = bucket * level.bucket_size
        last_start = base + level.bucket_size - 1
        slot = base
        for _ in range(capacity):
            yield slot
            if level.keys[slot] is None and (
                    slot >= last_start or slot < base):
                return
            slot = (slot + 1) % capacity

    def __iter__(self) -> Iterator[tuple]:
        return self._lookup(())

    def iter_next_values(self, prefix: tuple) -> Iterator:
        """Distinct child keys below ``prefix`` — a direct level walk.

        The Generic Join's candidate enumeration.  Values come straight
        from the target level's bucket chain (no payload materialization);
        grandparent-level false positives can surface (the join driver
        re-verifies every candidate against all atoms), duplicates cannot.
        """
        prefix = self._check_prefix(tuple(prefix))
        position = len(prefix)
        if position >= self.arity:
            # delegate so the base class raises its no-next-component error
            # (yield from, not return: inside a generator a returned
            # iterator would silently be discarded)
            yield from super().iter_next_values(prefix)
            return
        if position >= self.num_levels:
            # the final component lives only in payloads: project rows
            yield from super().iter_next_values(prefix)
            return
        level = self._levels[position]
        if position == 0:
            seen = set() if level.is_last else None
            for slot in range(level.capacity):
                key = level.keys[slot]
                if key is None:
                    continue
                if seen is None:
                    yield key  # first-level keys are unique by construction
                elif key not in seen:
                    seen.add(key)
                    yield key
            return
        parent_slot = self._descend_exact(prefix)
        if parent_slot is None:
            return
        designated = self._levels[position - 1].next_bucket[parent_slot]
        parent_key = prefix[-1]
        if not (level.spilled or level.shared):
            # fast path (see _enumerate): the bucket is exclusively ours
            base = designated * level.bucket_size
            seen = set() if level.is_last else None
            for slot in range(base, base + level.bucket_size):
                key = level.keys[slot]
                if key is None:
                    continue
                if seen is None:
                    yield key
                elif key not in seen:
                    seen.add(key)
                    yield key
            return
        seen = set()
        for slot in self._bucket_chain(level, designated):
            key = level.keys[slot]
            if key is None or key in seen:
                continue
            if self._parent_matches(level, slot, parent_key):
                seen.add(key)
                yield key

    def has_prefix(self, prefix: tuple) -> bool:
        """Existence probe; exact (payload-verified through ``_lookup``)."""
        prefix = self._check_prefix(tuple(prefix))
        for _ in self._lookup(prefix):
            return True
        return False

    def cursor(self) -> "SonicCursor":
        """Native incremental descent cursor (the Generic Join's probe API).

        Each :meth:`~repro.indexes.base.PrefixCursor.try_descend` is one
        hash probe at one level — the O(1)-per-step cost the paper's
        Alg. 3 assumes — instead of the root-to-leaf re-probe of the
        generic fallback.  Inner-depth descents may accept grandparent-
        level false positives (§3.3); the final depth verifies against
        the stored payload, so join results remain exact.
        """
        return SonicCursor(self)

    def batch_cursor(self) -> "SonicBatchCursor":
        """Native vectorized probe kernel (the batch Generic Join's API).

        See :class:`SonicBatchCursor` for the kernel design.
        """
        return SonicBatchCursor(self)

    # ------------------------------------------------------------------
    # Patch instrumentation (Figs 10 & 12, §5.13)
    # ------------------------------------------------------------------
    def force_patch_fraction(self, level_index: int, fraction: float) -> int:
        """Artificially patch ``fraction`` of the level's buckets (§5.13).

        Sets the patch bit and materializes each resident entry's patch key
        from the bucket owner, so lookups pay the patch-key comparison
        while results stay correct.  Returns the number of buckets patched.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        level = self._levels[level_index]
        if level.patch_bits is None:
            raise ConfigurationError("the first level has no patch structure")
        target = int(level.num_buckets * fraction)
        patched = 0
        for bucket in range(level.num_buckets):
            if patched >= target:
                break
            if level.patch_bits[bucket]:
                patched += 1
                continue
            level.patch_bits[bucket] = 1
            base = bucket * level.bucket_size
            owner = level.bucket_owner[bucket]
            for slot in range(base, base + level.bucket_size):
                if level.keys[slot] is not None and (
                        level.patch_keys[slot] is _NO_PATCH):
                    level.patch_keys[slot] = owner
            patched += 1
        return patched

    def patch_stats(self) -> dict[int, float]:
        """Level index → fraction of buckets patched (paper quotes ~10 %)."""
        stats = {}
        for level in self._levels:
            if level.patch_bits is None:
                continue
            patched = sum(1 for bit in level.patch_bits if bit)
            stats[level.index] = patched / level.num_buckets
        return stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def level_fill(self) -> list[float]:
        """Per-level slot occupancy (build-quality diagnostic)."""
        return [level.used_slots / level.capacity for level in self._levels]

    def memory_usage(self) -> int:
        """Actual allocation of this index in design bytes (Fig 18).

        Keys and patch keys at 8 B, counters 4 B, next-bucket offsets 8 B,
        payload tuples ``8×k`` B, patch bits 1 bit per bucket.
        """
        total = 0
        for level in self._levels:
            total += level.capacity * 8  # keys
            if level.prefix_count is not None:
                total += level.capacity * 4
            if level.next_bucket is not None:
                total += level.capacity * 8
            if level.rows is not None:
                total += level.capacity * 8 * self.arity
            if level.patch_bits is not None:
                total += -(-level.num_buckets // 8)  # bits, rounded up
                total += level.capacity * 8  # patch keys
        return total


class SonicCursor(PrefixCursor):
    """Stateful level-by-level descent through a :class:`SonicIndex`.

    The cursor's stack holds one frame per bound component:

    * components ``0 .. k-2`` live at Sonic levels; a frame records the
      matched slot (its prefix counter and next-bucket offset drive
      :meth:`count` and the next descend);
    * component ``k-1`` exists only inside last-level payloads; its frame
      is the verified row.

    Implements the :class:`repro.indexes.base.PrefixCursor` contract.
    """

    __slots__ = ("_index", "_path", "_slots")

    def __init__(self, index: SonicIndex):
        self._index = index
        self._path: list = []      # bound component values
        self._slots: list = []     # matched slot per level-bound component

    @property
    def depth(self) -> int:
        return len(self._path)

    # ------------------------------------------------------------------
    def try_descend(self, value) -> bool:
        index = self._index
        depth = self.depth
        if depth >= index.arity:
            raise SchemaError(f"cursor already at full depth {depth}")

        if depth == index.arity - 1:
            # final component: verify the full tuple against a payload
            if self._final_exists(value):
                self._path.append(value)
                self._slots.append(None)
                return True
            return False

        level = index._levels[depth]
        if depth == 0:
            slot, found = index._probe_first(level, value)
        else:
            designated = index._levels[depth - 1].next_bucket[self._slots[-1]]
            slot, found = index._probe_inner(level, designated, value,
                                             self._path[-1])
        if not found:
            return False
        if level.is_last and (level.spilled or level.shared):
            # the slot keys component k-2, but under probe-chain overlap
            # its payloads may belong to a foreign ancestry (§3.3): verify
            # that at least one payload matches the whole path (early-exit
            # scan; unambiguous levels skip this entirely)
            if next(iter(self._last_level_rows(value)), None) is None:
                return False
        self._path.append(value)
        self._slots.append(slot)
        return True

    def ascend(self) -> None:
        if not self._path:
            raise SchemaError("cursor.ascend above the root")
        self._path.pop()
        self._slots.pop()

    # ------------------------------------------------------------------
    def child_values(self):
        index = self._index
        depth = self.depth
        if depth >= index.arity:
            raise SchemaError("cursor at full depth has no children")
        if depth == index.arity - 1:
            # payload components below the current last-level key
            seen = set()
            for row in self._last_level_rows(self._path[-1]):
                value = row[depth]
                if value not in seen:
                    seen.add(value)
                    yield value
            return
        level = index._levels[depth]
        if depth == 0:
            seen = set() if level.is_last else None
            for slot in range(level.capacity):
                key = level.keys[slot]
                if key is None:
                    continue
                if seen is None:
                    yield key
                elif key not in seen:
                    seen.add(key)
                    yield key
            return
        designated = index._levels[depth - 1].next_bucket[self._slots[-1]]
        parent_key = self._path[-1]
        if not (level.spilled or level.shared):
            base = designated * level.bucket_size
            seen = set() if level.is_last else None
            for slot in range(base, base + level.bucket_size):
                key = level.keys[slot]
                if key is None:
                    continue
                if seen is None:
                    yield key
                elif key not in seen:
                    seen.add(key)
                    yield key
            return
        # spilled/shared level: inline chain walk (hot path under skew)
        seen = set()
        keys = level.keys
        capacity = level.capacity
        base = designated * level.bucket_size
        last_start = base + level.bucket_size - 1
        slot = base
        for _ in range(capacity):
            key = keys[slot]
            if key is None:
                if slot >= last_start or slot < base:
                    return
            elif key not in seen and index._parent_matches(level, slot,
                                                           parent_key):
                seen.add(key)
                yield key
            slot += 1
            if slot == capacity:
                slot = 0

    def count(self) -> int:
        """Advisory subtree size: the raw prefix counter (§3.4.3).

        Counter-bearing depths answer in O(1); depths at or below the last
        level scan the (short) payload bucket chain.  At full depth the
        node is a single verified tuple.
        """
        index = self._index
        depth = self.depth
        if depth == 0:
            return len(index)
        if depth == index.arity:
            return 1
        if depth == index.arity - 1:
            # node keyed at the last level, which has no counter (§3.4.1):
            # read the node's head-slot counter: the first (key, parent)-
            # matching slot in probe order carries the per-node count, so
            # seed selection stays O(probe) even on heavy-hitter chains.
            # Accuracy matters here — the Generic Join's anchor selection
            # relies on real sub-problem sizes (Alg. 1 line 10).
            key = self._path[-1]
            level = index._levels[-1]
            keys = level.keys
            capacity = level.capacity
            if index.num_levels == 1:
                slot = index._first_slot(level, key)
                check_parent = False
                parent_key = None
            else:
                designated, parent_key = self._last_level_frame()
                slot = (designated * level.bucket_size
                        + hash_key(key, index._seed) % level.bucket_size)
                check_parent = True
            for _ in range(capacity):
                existing = keys[slot]
                if existing is None:
                    return 0
                if existing == key and (not check_parent or
                                        index._parent_matches(level, slot,
                                                              parent_key)):
                    return level.prefix_count[slot]
                slot = (slot + 1) % capacity
            return 0
        return index._levels[depth - 1].prefix_count[self._slots[-1]]

    # ------------------------------------------------------------------
    def _last_level_frame(self):
        """(designated, parent_key) for scanning the last level."""
        index = self._index
        last = index.num_levels - 1  # level index of the last level
        if last == 0:
            return None, None  # arity 2: level 0 probed by hash, no parent
        # the frame below the last-level component holds the level last-1 slot
        slot = self._slots[last - 1]
        designated = index._levels[last - 1].next_bucket[slot]
        parent_key = self._path[last - 1]
        return designated, parent_key

    def _last_level_rows(self, key):
        """Payload rows matching the full bound path plus ``key`` at k-2.

        ``key`` is the last-level key component (path position k-2); the
        bound path up to and including that component is verified against
        each payload.
        """
        index = self._index
        level = index._levels[-1]
        prefix = tuple(self._path[:index.arity - 2]) + (key,)
        width = len(prefix)
        if index.num_levels == 1:
            # arity 2: scan the probe chain from the hashed home slot
            capacity = level.capacity
            slot = index._first_slot(level, key)
            for _ in range(capacity):
                existing = level.keys[slot]
                if existing is None:
                    return
                if existing == key:
                    row = level.rows[slot]
                    if row[:width] == prefix:
                        yield row
                slot = (slot + 1) % capacity
            return
        designated, parent_key = self._last_level_frame()
        if not (level.spilled or level.shared):
            base = designated * level.bucket_size
            for slot in range(base, base + level.bucket_size):
                if level.keys[slot] == key:
                    row = level.rows[slot]
                    if row[:width] == prefix:
                        yield row
            return
        # spilled/shared level: walk the bucket chain inline (this is the
        # enumeration inner loop; the generator-based _bucket_chain costs
        # a resumption per slot)
        keys = level.keys
        rows = level.rows
        capacity = level.capacity
        base = designated * level.bucket_size
        last_start = base + level.bucket_size - 1
        slot = base
        for _ in range(capacity):
            existing = keys[slot]
            if existing is None:
                if slot >= last_start or slot < base:
                    return
            elif existing == key and index._parent_matches(level, slot,
                                                           parent_key):
                row = rows[slot]
                if row[:width] == prefix:
                    yield row
            slot += 1
            if slot == capacity:
                slot = 0

    def _final_exists(self, value) -> bool:
        """Exact point check of ``path + (value,)`` against stored payloads.

        Written as direct loops rather than through ``_last_level_rows``:
        this sits in the Generic Join's innermost intersection and hub keys
        can have long chains.
        """
        index = self._index
        key = self._path[index.arity - 2]
        candidate = tuple(self._path) + (value,)
        level = index._levels[-1]
        keys = level.keys
        rows = level.rows
        if index.num_levels == 1:
            capacity = level.capacity
            slot = index._first_slot(level, key)
            for _ in range(capacity):
                existing = keys[slot]
                if existing is None:
                    return False
                if existing == key and rows[slot] == candidate:
                    return True
                slot = (slot + 1) % capacity
            return False
        designated, parent_key = self._last_level_frame()
        if not (level.spilled or level.shared):
            base = designated * level.bucket_size
            for slot in range(base, base + level.bucket_size):
                if keys[slot] == key and rows[slot] == candidate:
                    return True
            return False
        capacity = level.capacity
        base = designated * level.bucket_size
        last_start = base + level.bucket_size - 1
        slot = base
        for _ in range(capacity):
            existing = keys[slot]
            if existing is None:
                if slot >= last_start or slot < base:
                    return False
            elif existing == key and rows[slot] == candidate:
                if index._parent_matches(level, slot, parent_key):
                    return True
            slot += 1
            if slot == capacity:
                slot = 0
        return False


class SonicBatchCursor(CursorBatchCursor):
    """Batched bucket probing over a :class:`SonicIndex`.

    One :class:`SonicCursor` descends incrementally (one hash probe per
    bound component, Alg. 3); at each visited node the designated bucket's
    chain is scanned once and its distinct keys frozen into a sorted
    array.  ``probe_many`` then resolves a whole candidate vector with a
    single ``np.searchsorted`` against that array — the bucket hashing of
    the tuple-at-a-time path, amortized and vectorized.  Inner depths
    inherit Sonic's rare grandparent-level false positives (§3.3); the
    final depth builds its array from payload-verified rows, so batch
    joins stay exact.
    """

    __slots__ = ()

    def __init__(self, index: SonicIndex):
        super().__init__(SonicCursor(index))

    def _children_array(self, frame, depth: int):
        array = super()._children_array(frame, depth)
        if self._metrics.enabled:
            # one bucket-chain walk per materialized node: the unit of
            # probe work the memo amortizes away on revisits
            self._metrics.inc("sonic.node_walks")
            self._metrics.observe("sonic.node_children", array.size)
        return array
