"""The prepared join: built once, executable many times.

A :class:`PreparedJoin` is the prepare stage's output — a bound query, a
:class:`~repro.engine.ir.JoinPlan`, and every supporting structure the
plan needs, already built (and possibly shared with a session's index
cache).  Each :meth:`~PreparedJoin.execute` call constructs a fresh
driver over the shared structures — drivers keep per-run state (cursors,
sinks, metrics) so the structures themselves are safely reusable — and
returns an ordinary :class:`~repro.joins.results.JoinResult`.

**Timing semantics.**  The paper charges ad-hoc index build to every
WCOJ run (§5.15).  A prepared join preserves that contract on its
*first* execution: the prepare-stage build wall time is charged to the
first result's ``metrics.build_seconds`` (which is how the back-compat
:func:`repro.joins.join` cold path stays bit-identical with the seed).
Repeat executions report ``build_seconds == 0.0`` — the serving-path
win the session cache exists for.

**Staleness.**  The structures pin a snapshot of the relations at
prepare time; mutating a relation afterwards does not refresh them.
Re-prepare (cheap through a warm cache — the mutation bumps the
version, so only genuinely-stale structures rebuild) to observe new
data; :meth:`repro.engine.session.Session.execute` does exactly that on
every call.
"""

from __future__ import annotations

from repro.core.adapter import IndexAdapter
from repro.core.envflag import resolve_flag
from repro.engine.ir import BoundQuery, JoinPlan, PlanStage, stage_alias
from repro.joins.batch import GenericJoinBatch
from repro.joins.binary import BinaryHashJoin
from repro.joins.executor import attach_profile
from repro.joins.generic_join import GenericJoin
from repro.joins.hashtrie_join import HashTrieJoin
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.joins.recursive import RecursiveJoin
from repro.joins.results import JoinResult
from repro.obs.observer import JoinObserver, NULL_OBSERVER
from repro.storage.relation import Relation


class PreparedJoin:
    """An executable join with its supporting structures already built."""

    def __init__(self, bound: BoundQuery, plan: JoinPlan,
                 structures: dict[str, object], build_seconds: float,
                 owned_shards: bool = False):
        self.bound = bound
        self.plan = plan
        self.structures = structures
        #: wall time the prepare stage spent building (cache hits ≈ 0)
        self.build_seconds = build_seconds
        self.executions = 0
        self._pending_build = build_seconds
        #: sharded plans only: does close() own the shared-memory
        #: segments (cold path), or does the session cache (warm path)?
        self._owned_shards = owned_shards
        self._runner = None
        self._assemble()

    # ------------------------------------------------------------------
    def _assemble(self) -> None:
        """Driver-ready views over the built structures (cheap wrappers)."""
        plan, relations = self.plan, self.bound.relations
        algorithm = plan.algorithm
        if plan.sharding is not None:
            # imported lazily — repro.parallel's worker re-enters the
            # engine pipeline, so module scope stays one-directional
            from repro.parallel.runner import ShardedRunner

            self._runner = ShardedRunner(self.bound, plan, self.structures,
                                         owned=self._owned_shards)
            return
        if algorithm == "unified":
            # stage drivers assemble per execution: child stages emit
            # intermediate relations at run time, so there is nothing
            # useful to wire up ahead of the first execute()
            return
        if algorithm in ("generic", "hashtrie"):
            # adapters are stateless (relation, index, permutation)
            # wrappers: constructing them does not build anything
            self._adapters = {
                alias: IndexAdapter(relations[alias], structure,
                                    plan.total_order)
                for alias, structure in self.structures.items()
            }
        elif algorithm == "binary":
            stages = []
            for spec in plan.index_specs:
                key_arity = spec.key_arity or 0
                stages.append({
                    "alias": spec.alias,
                    "key_attrs": spec.attribute_order[:key_arity],
                    "payload_attrs": spec.attribute_order[key_arity:],
                    "key_positions": spec.permutation[:key_arity],
                    "payload_positions": spec.permutation[key_arity:],
                    "table": self.structures[spec.alias],
                })
            output = list(self.bound.query.attributes_of(plan.atom_order[0]))
            for stage in stages:
                output.extend(stage["payload_attrs"])
            self._stages = stages
            self._output_attrs = tuple(output)

    # ------------------------------------------------------------------
    def execute(self, materialize: bool = False, obs=None,
                profile: "bool | None" = None,
                trace_out: "str | None" = None) -> JoinResult:
        """Run the prepared join once; fresh driver, shared structures.

        ``obs`` / ``profile`` / ``trace_out`` mirror
        :func:`repro.joins.join`: an explicit observer wins, else
        ``profile`` (default ``REPRO_PROFILE``) spins up a private
        :class:`~repro.obs.observer.JoinObserver` for this execution.
        Note a warm execution's profile has no ``build_index`` spans —
        the builds happened at prepare time, under the prepare
        observer.
        """
        if obs is not None:
            observer = obs
        elif resolve_flag(profile, "REPRO_PROFILE"):
            observer = JoinObserver()
        else:
            observer = NULL_OBSERVER
        # §5.15 build-included timing: the prepare-stage build cost lands
        # on the first execution only
        charge, self._pending_build = self._pending_build, 0.0
        self.executions += 1
        bound, plan = self.bound, self.plan
        query, relations = bound.query, bound.relations

        if plan.sharding is not None:
            # the runner attaches the ShardedJoinProfile itself — it is
            # the only layer that still holds the per-shard responses
            # (spans, per-shard profiles, clock stamps) the distributed
            # assembly needs
            return self._runner.execute(materialize=materialize,
                                        obs=observer, build_charge=charge,
                                        trace_out=trace_out)
        if plan.algorithm == "unified":
            return self._execute_unified(materialize, observer, charge,
                                         trace_out)
        if plan.algorithm == "binary":
            driver = BinaryHashJoin(
                query, relations, order=list(plan.atom_order), obs=observer,
                prebuilt=(self._stages, self._output_attrs))
            order: tuple[str, ...] = tuple(plan.atom_order)
            engine = None
        elif plan.algorithm == "hashtrie":
            driver = HashTrieJoin(query, relations, order=plan.total_order,
                                  obs=observer, adapters=self._adapters)
            order = plan.total_order
            engine = None
        elif plan.algorithm == "leapfrog":
            driver = LeapfrogTrieJoin(query, relations,
                                      order=plan.total_order, obs=observer,
                                      tries=self.structures)
            order = plan.total_order
            engine = None
        elif plan.algorithm == "recursive":
            driver = RecursiveJoin(query, relations, order=plan.total_order,
                                   edges=self.structures)
            order = plan.total_order
            engine = None
        else:
            driver_cls = (GenericJoinBatch if plan.engine == "batch"
                          else GenericJoin)
            driver = driver_cls(query, self._adapters, order=plan.total_order,
                                dynamic_seed=plan.dynamic_seed, obs=observer)
            driver.metrics.index = plan.index
            order = plan.total_order
            engine = plan.engine
        driver.metrics.build_seconds = charge
        result = driver.run(materialize=materialize)
        lazy_charge = self._drain_lazy_charges()
        if lazy_charge:
            # deferred lazy-build time surfaces on the run that actually
            # materialized the levels (§5.15 build-included timing)
            result.metrics.build_seconds += lazy_charge
        return attach_profile(query, result, observer, plan.choice, order,
                              engine=engine, trace_out=trace_out)

    def _drain_lazy_charges(self) -> float:
        """Collect pending lazy materialization time from the structures."""
        total = 0.0
        for structure in self.structures.values():
            take = getattr(structure, "take_pending_charge", None)
            if callable(take):
                total += take()
        return total

    # ------------------------------------------------------------------
    def _execute_unified(self, materialize: bool, observer, charge: float,
                         trace_out: "str | None") -> JoinResult:
        """Run a stage-tree plan: children depth-first, root last.

        The root stage runs under the caller's observer (so the profile's
        level tree describes the root driver); child stages get private
        observers when profiling is on, and their per-stage summaries
        land on ``profile.stages``.  Lazy structures drain their pending
        materialization time into this run's ``metrics.build_seconds`` —
        deferred build cost surfaces on the execution that incurred it,
        preserving the §5.15 build-included timing contract.
        """
        plan = self.plan
        relations = dict(self.bound.relations)
        result, reports = self._run_stage(plan.root_stage, relations,
                                          observer, materialize, depth=0)
        metrics = result.metrics
        metrics.algorithm = "unified"
        if plan.index and not metrics.index:
            metrics.index = plan.index
        lazy_charge = 0.0
        for structure in self.structures.values():
            take = getattr(structure, "take_pending_charge", None)
            if callable(take):
                lazy_charge += take()
        metrics.build_seconds += charge + lazy_charge
        root = plan.root_stage
        order = root.total_order or root.atom_order
        engine = plan.engine if root.algorithm == "generic" else None
        result = attach_profile(self.bound.query, result, observer,
                                plan.choice, order, engine=engine,
                                trace_out=trace_out)
        if result.profile is not None:
            result.profile.stages = reports
        return result

    def _run_stage(self, stage: PlanStage, relations: dict, observer,
                   materialize: bool, depth: int):
        """Execute one stage (children first); returns (result, reports).

        Child outputs join as synthetic ``stage:<label>`` relations —
        ordinary :class:`~repro.storage.relation.Relation` objects over
        the materialized rows, which is what lets a binary pipeline
        stage probe a Generic Join sub-plan's output with zero special
        cases in the drivers.
        """
        plan = self.plan
        reports: list[dict] = []
        child_runs: list[JoinResult] = []
        for child in stage.children:
            child_obs = JoinObserver() if observer.enabled else NULL_OBSERVER
            child_result, child_reports = self._run_stage(
                child, relations, child_obs, True, depth + 1)
            reports.extend(child_reports)
            child_runs.append(child_result)
            feeder = stage_alias(child.label)
            relations[feeder] = Relation(feeder, child.output,
                                         child_result.rows)
        if stage.algorithm == "binary":
            stages = []
            for spec in stage.index_specs:
                key_arity = spec.key_arity or 0
                stages.append({
                    "alias": spec.alias,
                    "key_attrs": spec.attribute_order[:key_arity],
                    "payload_attrs": spec.attribute_order[key_arity:],
                    "key_positions": spec.permutation[:key_arity],
                    "payload_positions": spec.permutation[key_arity:],
                    "table": self.structures[spec.alias],
                })
            output = list(stage.query.attributes_of(stage.atom_order[0]))
            for entry in stages:
                output.extend(entry["payload_attrs"])
            driver = BinaryHashJoin(stage.query, relations,
                                    order=list(stage.atom_order),
                                    obs=observer,
                                    prebuilt=(stages, tuple(output)))
        else:
            adapters = {
                atom.alias: IndexAdapter(relations[atom.alias],
                                         self.structures[atom.alias],
                                         stage.total_order)
                for atom in stage.query.atoms
            }
            driver_cls = (GenericJoinBatch if stage.engine == "batch"
                          else GenericJoin)
            driver = driver_cls(stage.query, adapters,
                                order=stage.total_order,
                                dynamic_seed=plan.dynamic_seed, obs=observer)
            driver.metrics.index = stage.index
        result = driver.run(materialize=materialize)
        choice = stage.choice
        estimated = None
        if choice is not None:
            estimated = (choice.binary_estimate
                         if stage.algorithm == "binary" else choice.agm_bound)
        report = {
            "label": stage.label,
            "depth": depth,
            "algorithm": stage.algorithm,
            "engine": stage.engine or None,
            "index": stage.index or None,
            "order": list(stage.total_order or stage.atom_order),
            "estimated_rows": (float(estimated) if estimated is not None
                               else None),
            "actual_rows": int(result.count),
            "seconds": round(result.metrics.probe_seconds, 6),
        }
        # fold the children's work into this stage's metrics so the root
        # result reports whole-query totals; a child's output rows are
        # intermediates from the whole query's point of view
        metrics = result.metrics
        for child_result in child_runs:
            child_metrics = child_result.metrics
            metrics.probe_seconds += child_metrics.probe_seconds
            metrics.build_seconds += child_metrics.build_seconds
            metrics.lookups += child_metrics.lookups
            metrics.intermediate_tuples += (
                child_metrics.intermediate_tuples + child_result.count)
        return result, [report] + reports

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release execution resources (idempotent; no-op when there are
        none).  A sharded prepared join shuts its worker pool down and —
        on the cold path, where no session cache co-owns them — unlinks
        the shared-memory shard segments.  Ordinary prepared joins hold
        nothing that needs releasing."""
        if self._runner is not None:
            self._runner.close()

    def __enter__(self) -> "PreparedJoin":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def explain(self) -> str:
        """One-line physical-plan summary (delegates to the plan IR)."""
        return self.plan.describe()

    def __repr__(self) -> str:
        return (f"PreparedJoin({self.plan.describe()!r}, "
                f"executions={self.executions})")
