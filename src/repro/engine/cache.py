"""The session-scoped index cache: build once, probe many times.

The paper treats ad-hoc index build as part of every WCOJ run (§5.15),
and the cold :func:`repro.joins.join` path keeps that timing semantics.
But the ROADMAP's serving scenario — heavy repeated traffic over
slowly-changing relations — makes per-query rebuilds the dominant wasted
cost.  This cache closes that gap at the **prepare** stage: a built
structure (a registry index, a binary-stage hash table, a frozen row
set) is stored under

    ``(relation fingerprint, kind, column permutation, options[, key arity])``

where the fingerprint is :meth:`repro.storage.relation.Relation.
fingerprint` — ``(storage identity, version)``.  Mutating a relation
bumps the shared version counter, so every entry built against the old
contents silently stops matching and ages out; no invalidation hooks,
no back-pointers from relations into caches.

Eviction is LRU under two budgets: an entry-count cap and a byte budget
fed by per-structure estimates (``memory_usage()`` when the structure
reports one, a tuple-count heuristic otherwise).  Counters
(``cache.hit`` / ``cache.miss`` / ``cache.store`` / ``cache.evict``) go
to the registry the cache was constructed with — a session's registry,
so hit rates survive across runs — and are mirrored into any enabled
per-run observer by the prepare stage.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.obs.metrics import Metrics
from repro.storage.relation import Relation

#: default byte budget: generous for benchmark-scale data, small enough
#: that a long-lived session over many relations actually recycles
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024
#: fallback per-value byte estimate when a structure reports no usage
APPROX_BYTES_PER_VALUE = 64


def estimate_structure_bytes(structure: object, tuples: int, arity: int) -> int:
    """Bytes one cached structure is charged against the budget.

    Prefers the structure's own ``memory_usage()`` (Sonic reports its
    actual allocation, §3.5); anything else is charged a flat
    per-stored-value heuristic — deliberately coarse, since the budget
    exists to bound growth, not to be an allocator.
    """
    usage = getattr(structure, "memory_usage", None)
    if callable(usage):
        try:
            reported = usage()
        except Exception:
            reported = None
        if isinstance(reported, (int, float)) and reported > 0:
            return int(reported)
    return max(1, tuples) * max(1, arity) * APPROX_BYTES_PER_VALUE


class CacheStats:
    """Point-in-time cache accounting, returned by :meth:`IndexCache.stats`."""

    __slots__ = ("hits", "misses", "stores", "evictions", "entries", "bytes")

    def __init__(self, hits: int, misses: int, stores: int, evictions: int,
                 entries: int, bytes_: int):
        self.hits = hits
        self.misses = misses
        self.stores = stores
        self.evictions = evictions
        self.entries = entries
        self.bytes = bytes_

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes": self.bytes,
        }

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"stores={self.stores}, evictions={self.evictions}, "
                f"entries={self.entries}, bytes={self.bytes})")


class _Entry:
    __slots__ = ("value", "bytes", "fingerprint", "built_depth")

    def __init__(self, value: object, bytes_: int, fingerprint: tuple,
                 built_depth: "int | None" = None):
        self.value = value
        self.bytes = bytes_
        self.fingerprint = fingerprint
        #: lazy adapters only: how many trie levels were materialized
        #: when the entry was last charged (None for eager structures)
        self.built_depth = built_depth


class IndexCache:
    """LRU + byte-budget cache of built join-supporting structures.

    One instance lives inside each :class:`~repro.engine.session.Session`;
    the prepare stage is the only writer.  ``max_bytes=0`` (or
    ``max_entries=0``) disables storage entirely — every lookup is a
    miss and nothing is retained, which is how the back-compat
    :func:`repro.joins.join` cold path preserves the paper's
    build-included timing semantics.

    **Thread safety.**  Every public operation takes the single internal
    lock, so get / put / put_if_absent / invalidate / evict are each
    atomic with respect to the LRU order *and* the byte accounting; the
    lock is never held across a structure build (see
    :func:`repro.engine.pipeline.prepare`, which builds outside the
    cache and publishes via :meth:`put_if_absent`).  Counter increments
    happen outside the cache lock — :class:`~repro.obs.metrics.Metrics`
    has its own — keeping the lock-order graph acyclic.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES,
                 max_entries: "int | None" = None,
                 metrics: "Metrics | None" = None):
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else Metrics()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()  # repro: shared[lock=_lock]
        self._bytes = 0       # repro: shared[lock=_lock]
        self._evictions = 0   # repro: shared[lock=_lock]
        self._stores = 0      # repro: shared[lock=_lock]

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0 and (self.max_entries is None
                                       or self.max_entries > 0)

    def key_for(self, relation: Relation, suffix: tuple) -> tuple:
        """Full cache key: the relation's fingerprint + the spec suffix."""
        return (relation.fingerprint(), *suffix)

    def get(self, key: tuple) -> "object | None":
        """The cached structure, marking it most-recently-used; else None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is None:
            self.metrics.inc("cache.miss")
            return None
        self.metrics.inc("cache.hit")
        return entry.value

    def put(self, key: tuple, value: object, bytes_: int) -> None:
        """Store a freshly-built structure and evict down to budget.

        Unconditional last-write-wins: an existing entry under ``key``
        is replaced (its bytes reclaimed without counting an eviction).
        Concurrent builders racing on one key should prefer
        :meth:`put_if_absent`, which keeps a single canonical structure
        and the ``stores − evictions == entries`` identity.
        """
        if not self.enabled:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.bytes
            self._entries[key] = _Entry(value, bytes_, key[0])
            self._bytes += bytes_
            self._stores += 1
            evicted = self._evict_to_budget()
        self.metrics.inc("cache.store")
        if evicted:
            self.metrics.inc("cache.evict", evicted)

    def put_if_absent(self, key: tuple, value: object, bytes_: int,
                      built_depth: "int | None" = None) -> object:
        """Publish a built structure unless one is already cached.

        The compare-and-swap half of the prepare stage's miss path: the
        build happens outside the lock, so two threads missing on the
        same key both build — whichever publishes second adopts the
        first thread's structure instead of displacing it, and the loser
        is counted as ``cache.race`` (its build was wasted work, not a
        store).  Returns the canonical structure to use.

        ``built_depth`` seeds the lazy-adapter depth component (see
        :meth:`upgrade_depth`); eager structures leave it ``None``.
        """
        if not self.enabled:
            return value
        evicted = 0
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
            else:
                self._entries[key] = _Entry(value, bytes_, key[0],
                                            built_depth=built_depth)
                self._bytes += bytes_
                self._stores += 1
                evicted = self._evict_to_budget()
        if existing is not None:
            self.metrics.inc("cache.race")
            return existing.value
        self.metrics.inc("cache.store")
        if evicted:
            self.metrics.inc("cache.evict", evicted)
        return value

    def upgrade_depth(self, key: tuple, built_depth: int, bytes_: int) -> bool:
        """Record that a cached lazy adapter materialized deeper levels.

        A lazy entry is stored shallow and cheap; when a join descends
        further, the adapter's deepen callback reports the new depth and
        the re-estimated byte footprint here, upgrading the cached entry
        **in place** — the deeper build replaces the shallow charge, no
        re-keying, no duplicate entry.  No-ops (returning False) when
        the entry has been evicted/invalidated meanwhile or the recorded
        depth is already at least as deep; a growing footprint can push
        colder entries out of the byte budget.
        """
        if not self.enabled:
            return False
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            if entry.built_depth is not None and entry.built_depth >= built_depth:
                return False
            self._bytes += bytes_ - entry.bytes
            entry.bytes = bytes_
            entry.built_depth = built_depth
            evicted = self._evict_to_budget()
        if evicted:
            self.metrics.inc("cache.evict", evicted)
        return True

    def built_depth(self, key: tuple) -> "int | None":
        """The recorded lazy build depth for ``key`` (None when absent
        or eager)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry.built_depth if entry is not None else None

    def invalidate_relation(self, relation: Relation) -> int:
        """Drop every entry built from ``relation``'s storage, any version.

        Fingerprint mismatches already keep stale entries from being
        *served*; this additionally releases their memory eagerly (used
        by :meth:`Session.invalidate`).  Returns the number dropped.

        Structures that advertise ``CLOSE_ON_INVALIDATE`` (partially
        built lazy adapters) are additionally ``close()``\\ d — *after*
        the lock is released, preserving the never-hold-the-lock-across
        -structure-work discipline.  Closing detaches the adapter's
        cache-upgrade callback mid-materialization; its pinned snapshot
        stays consistent for any reader still holding it, so a
        concurrent ``extend()`` can never expose a half-built level over
        mixed old/new rows.
        """
        storage_id = id(relation.rows)
        closeable = []
        with self._lock:
            doomed = [key for key, entry in self._entries.items()
                      if entry.fingerprint[0] == storage_id]
            for key in doomed:
                entry = self._entries[key]
                if getattr(entry.value, "CLOSE_ON_INVALIDATE", False):
                    closeable.append(entry.value)
                self._drop(key)
        for value in closeable:
            value.close()
        if doomed:
            self.metrics.inc("cache.evict", len(doomed))
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (counters keep their history)."""
        dropped = 0
        with self._lock:
            while self._entries:
                self._drop(next(iter(self._entries)))
                dropped += 1
        if dropped:
            self.metrics.inc("cache.evict", dropped)

    # ------------------------------------------------------------------
    def _drop(self, key: tuple) -> None:   # repro: borrows-lock[_lock]
        entry = self._entries.pop(key)
        self._bytes -= entry.bytes
        self._evictions += 1

    def _evict_to_budget(self) -> int:   # repro: borrows-lock[_lock]
        evicted = 0
        while self._entries and (
            self._bytes > self.max_bytes
            or (self.max_entries is not None
                and len(self._entries) > self.max_entries)
        ):
            # LRU: the OrderedDict's head is the coldest entry
            self._drop(next(iter(self._entries)))
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def stats(self) -> CacheStats:
        with self._lock:
            stores = self._stores
            evictions = self._evictions
            entries = len(self._entries)
            bytes_ = self._bytes
        return CacheStats(
            hits=self.metrics.get("cache.hit"),
            misses=self.metrics.get("cache.miss"),
            stores=stores,
            evictions=evictions,
            entries=entries,
            bytes_=bytes_,
        )
