"""The session-scoped index cache: build once, probe many times.

The paper treats ad-hoc index build as part of every WCOJ run (§5.15),
and the cold :func:`repro.joins.join` path keeps that timing semantics.
But the ROADMAP's serving scenario — heavy repeated traffic over
slowly-changing relations — makes per-query rebuilds the dominant wasted
cost.  This cache closes that gap at the **prepare** stage: a built
structure (a registry index, a binary-stage hash table, a frozen row
set) is stored under

    ``(relation fingerprint, kind, column permutation, options[, key arity])``

where the fingerprint is :meth:`repro.storage.relation.Relation.
fingerprint` — ``(storage identity, version)``.  Mutating a relation
bumps the shared version counter, so every entry built against the old
contents silently stops matching and ages out; no invalidation hooks,
no back-pointers from relations into caches.

Eviction is LRU under two budgets: an entry-count cap and a byte budget
fed by per-structure estimates (``memory_usage()`` when the structure
reports one, a tuple-count heuristic otherwise).  Counters
(``cache.hit`` / ``cache.miss`` / ``cache.store`` / ``cache.evict``) go
to the registry the cache was constructed with — a session's registry,
so hit rates survive across runs — and are mirrored into any enabled
per-run observer by the prepare stage.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.metrics import Metrics
from repro.storage.relation import Relation

#: default byte budget: generous for benchmark-scale data, small enough
#: that a long-lived session over many relations actually recycles
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024
#: fallback per-value byte estimate when a structure reports no usage
APPROX_BYTES_PER_VALUE = 64


def estimate_structure_bytes(structure: object, tuples: int, arity: int) -> int:
    """Bytes one cached structure is charged against the budget.

    Prefers the structure's own ``memory_usage()`` (Sonic reports its
    actual allocation, §3.5); anything else is charged a flat
    per-stored-value heuristic — deliberately coarse, since the budget
    exists to bound growth, not to be an allocator.
    """
    usage = getattr(structure, "memory_usage", None)
    if callable(usage):
        try:
            reported = usage()
        except Exception:
            reported = None
        if isinstance(reported, (int, float)) and reported > 0:
            return int(reported)
    return max(1, tuples) * max(1, arity) * APPROX_BYTES_PER_VALUE


class CacheStats:
    """Point-in-time cache accounting, returned by :meth:`IndexCache.stats`."""

    __slots__ = ("hits", "misses", "stores", "evictions", "entries", "bytes")

    def __init__(self, hits: int, misses: int, stores: int, evictions: int,
                 entries: int, bytes_: int):
        self.hits = hits
        self.misses = misses
        self.stores = stores
        self.evictions = evictions
        self.entries = entries
        self.bytes = bytes_

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "entries": self.entries,
            "bytes": self.bytes,
        }

    def __repr__(self) -> str:
        return (f"CacheStats(hits={self.hits}, misses={self.misses}, "
                f"stores={self.stores}, evictions={self.evictions}, "
                f"entries={self.entries}, bytes={self.bytes})")


class _Entry:
    __slots__ = ("value", "bytes", "fingerprint")

    def __init__(self, value: object, bytes_: int, fingerprint: tuple):
        self.value = value
        self.bytes = bytes_
        self.fingerprint = fingerprint


class IndexCache:
    """LRU + byte-budget cache of built join-supporting structures.

    One instance lives inside each :class:`~repro.engine.session.Session`;
    the prepare stage is the only writer.  ``max_bytes=0`` (or
    ``max_entries=0``) disables storage entirely — every lookup is a
    miss and nothing is retained, which is how the back-compat
    :func:`repro.joins.join` cold path preserves the paper's
    build-included timing semantics.
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES,
                 max_entries: "int | None" = None,
                 metrics: "Metrics | None" = None):
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else Metrics()
        self._entries: "OrderedDict[tuple, _Entry]" = OrderedDict()
        self._bytes = 0
        self._evictions = 0
        self._stores = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0 and (self.max_entries is None
                                       or self.max_entries > 0)

    def key_for(self, relation: Relation, suffix: tuple) -> tuple:
        """Full cache key: the relation's fingerprint + the spec suffix."""
        return (relation.fingerprint(), *suffix)

    def get(self, key: tuple) -> "object | None":
        """The cached structure, marking it most-recently-used; else None."""
        entry = self._entries.get(key)
        if entry is None:
            self.metrics.inc("cache.miss")
            return None
        self._entries.move_to_end(key)
        self.metrics.inc("cache.hit")
        return entry.value

    def put(self, key: tuple, value: object, bytes_: int) -> None:
        """Store a freshly-built structure and evict down to budget."""
        if not self.enabled:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.bytes
        self._entries[key] = _Entry(value, bytes_, key[0])
        self._bytes += bytes_
        self._stores += 1
        self.metrics.inc("cache.store")
        self._evict_to_budget()

    def invalidate_relation(self, relation: Relation) -> int:
        """Drop every entry built from ``relation``'s storage, any version.

        Fingerprint mismatches already keep stale entries from being
        *served*; this additionally releases their memory eagerly (used
        by :meth:`Session.invalidate`).  Returns the number dropped.
        """
        storage_id = id(relation.rows)
        doomed = [key for key, entry in self._entries.items()
                  if entry.fingerprint[0] == storage_id]
        for key in doomed:
            self._drop(key)
        return len(doomed)

    def clear(self) -> None:
        """Drop everything (counters keep their history)."""
        while self._entries:
            self._drop(next(iter(self._entries)))

    # ------------------------------------------------------------------
    def _drop(self, key: tuple) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.bytes
        self._evictions += 1
        self.metrics.inc("cache.evict")

    def _evict_to_budget(self) -> None:
        while self._entries and (
            self._bytes > self.max_bytes
            or (self.max_entries is not None
                and len(self._entries) > self.max_entries)
        ):
            # LRU: the OrderedDict's head is the coldest entry
            self._drop(next(iter(self._entries)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @property
    def bytes_used(self) -> int:
        return self._bytes

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.metrics.get("cache.hit"),
            misses=self.metrics.get("cache.miss"),
            stores=self._stores,
            evictions=self._evictions,
            entries=len(self._entries),
            bytes_=self._bytes,
        )
