"""repro.engine — the staged query engine: bind → plan → prepare → execute.

The seed's monolithic :func:`repro.joins.join` is refactored into an
explicit compile pipeline with inert artifacts between stages
(:mod:`~repro.engine.pipeline`), a join-plan IR covering every
algorithm/engine combination (:mod:`~repro.engine.ir`), a re-executable
prepared join (:mod:`~repro.engine.prepared`), and a session facade
with a fingerprint-keyed LRU index cache (:mod:`~repro.engine.session`,
:mod:`~repro.engine.cache`).  ``join()`` itself survives as a thin
cold-path wrapper over these stages.  See ``docs/architecture.md``.
"""

from repro.engine.cache import (
    DEFAULT_CACHE_BYTES,
    CacheStats,
    IndexCache,
    estimate_structure_bytes,
)
from repro.engine.ir import (
    HASHTABLE_KIND,
    TUPLESET_KIND,
    BoundQuery,
    IndexSpec,
    JoinPlan,
    PlanStage,
    ShardingSpec,
    canonical_options,
    stage_alias,
)
from repro.engine.pipeline import ALGORITHMS, ENGINES, bind, plan, prepare
from repro.engine.prepared import PreparedJoin
from repro.engine.session import Session

__all__ = [
    "ALGORITHMS",
    "ENGINES",
    "BoundQuery",
    "CacheStats",
    "DEFAULT_CACHE_BYTES",
    "HASHTABLE_KIND",
    "IndexCache",
    "IndexSpec",
    "JoinPlan",
    "PlanStage",
    "PreparedJoin",
    "Session",
    "ShardingSpec",
    "TUPLESET_KIND",
    "bind",
    "canonical_options",
    "estimate_structure_bytes",
    "plan",
    "prepare",
    "stage_alias",
]
