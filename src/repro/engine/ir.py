"""The join-plan IR — one representation for every execution strategy.

The seed executor hand-dispatched five drivers from a monolithic
``join()`` with per-algorithm special cases; following Free Join (Wang et
al.) and the unified binary/WCOJ architecture of Kaboli et al., the
engine instead compiles every query — binary pipeline, Generic Join
(tuple or batch), Hash-Trie Join, Leapfrog Triejoin, recursive NPRR —
into the same two artifacts:

* :class:`JoinPlan` — the *logical+physical* decision record: resolved
  algorithm and engine, total attribute order (or binary atom order),
  one :class:`IndexSpec` per supporting structure, optimizer rationale.
* :class:`BoundQuery` — the query text resolved against a relation
  source (the **bind** stage's output), carried separately so one plan
  can be validated without data and prepared against data.

Both are inert data: no index is built and nothing executes until the
**prepare** stage (:mod:`repro.engine.pipeline`) turns specs into built
structures — which is exactly the seam the session-scoped index cache
(:mod:`repro.engine.cache`) slots into, because an :class:`IndexSpec`
plus a relation fingerprint *is* a cache key.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.planner.optimizer import PlanChoice
from repro.planner.query import JoinQuery
from repro.storage.relation import Relation

#: structure kinds that are not index-registry entries but still cacheable
HASHTABLE_KIND = "hashtable"     # binary pipeline stage table
TUPLESET_KIND = "tupleset"       # recursive NPRR frozen row set


def canonical_options(options: "Mapping[str, object] | None",
                      ) -> tuple[tuple[str, object], ...]:
    """Options as a sorted, hashable tuple — the cache-key form."""
    if not options:
        return ()
    return tuple(sorted(options.items()))


@dataclass(frozen=True)
class IndexSpec:
    """One supporting structure a plan needs, described but not built.

    ``permutation`` maps storage column positions into structure-level
    positions (the §2.3.1 attribute permutation); together with the
    relation's fingerprint, ``(kind, permutation, options)`` identifies a
    reusable structure — two atoms over the same stored relation with the
    same permutation share one build, which is how self-join aliases end
    up reusing a single cached index.

    ``key_arity`` is only meaningful for ``kind="hashtable"`` (binary
    pipeline stages): the first ``key_arity`` entries of
    ``attribute_order`` are the probe key, the rest the payload.

    ``lazy`` requests a :class:`~repro.indexes.lazy.LazyTrieAdapter`
    instead of an eager build: trie levels materialize on first descent
    (the Free Join COLT strategy promoted from probe-time memoization to
    a build strategy).  Only kinds with level-at-a-time bulk builds
    qualify (RA309 in :mod:`repro.analysis.plancheck`).
    """

    alias: str
    kind: str
    attribute_order: tuple[str, ...]
    permutation: tuple[int, ...]
    options: tuple[tuple[str, object], ...] = ()
    key_arity: "int | None" = None
    lazy: bool = False

    def cache_key_suffix(self) -> tuple:
        """The relation-independent part of this spec's cache key.

        Lazy specs get a distinct suffix — a partially-built lazy
        adapter and an eager index are different structure types and
        must never alias one cache entry.  Eager specs keep the
        historical 4-tuple shape so pre-existing cache keys survive.
        """
        suffix = (self.kind, self.permutation, self.options, self.key_arity)
        if self.lazy:
            return suffix + ("lazy",)
        return suffix


#: alias prefix that marks an atom as fed by a child stage's output
STAGE_ALIAS_PREFIX = "stage:"


def stage_alias(label: str) -> str:
    """The synthetic atom alias a child stage's output binds to."""
    return STAGE_ALIAS_PREFIX + label


@dataclass(frozen=True)
class PlanStage:
    """One node of a unified stage-tree plan.

    A stage is a self-contained sub-plan — a binary hash pipeline, a
    Generic Join sub-plan, or a recursive leaf — over ``query``, whose
    atoms are either base-relation atoms (their structures come from
    ``index_specs``) or synthetic ``stage:<label>`` atoms fed by the
    correspondingly-labelled child stage's materialized output.  The
    execute stage runs children depth-first, wraps each child's rows as
    an intermediate :class:`~repro.storage.relation.Relation`, and then
    runs this stage's driver over base + intermediate relations — the
    Free Join / unified-architecture shape where binary pipeline stages
    and WCOJ sub-plans compose in one query.

    ``output`` is the stage's result schema, in emission order; a parent
    stage's synthetic atom carries exactly these attributes (RA308).
    ``algorithm`` is always resolved — ``"auto"`` never survives below
    the root (RA308).  ``choice`` records the per-component hybrid
    optimizer rationale.
    """

    label: str
    algorithm: str
    query: JoinQuery
    output: tuple[str, ...]
    engine: str = ""
    index: str = ""
    total_order: tuple[str, ...] = ()
    atom_order: tuple[str, ...] = ()
    index_specs: tuple[IndexSpec, ...] = ()
    children: "tuple[PlanStage, ...]" = ()
    choice: "PlanChoice | None" = None

    def describe(self, indent: int = 0) -> str:
        """The nested multi-line stage form (EXPLAIN / tests)."""
        head = self.algorithm
        if self.engine:
            head += f"/{self.engine}"
        if self.index:
            head += f" index={self.index}"
        if self.total_order:
            head += f" order={','.join(self.total_order)}"
        if self.atom_order:
            head += f" atoms={','.join(self.atom_order)}"
        if any(spec.lazy for spec in self.index_specs):
            head += " lazy"
        lines = [("  " * indent) + f"- stage {self.label}: {head}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class ShardingSpec:
    """Multiprocess sharded execution of an otherwise ordinary plan.

    Generic Join partitions cleanly on the first attribute of the total
    order: every result tuple binds that attribute to exactly one value,
    so hashing the value into one of ``workers`` shards splits the
    result set into disjoint pieces.  Atoms whose relation carries the
    attribute are filtered to their shard; atoms that never bind it are
    replicated to every shard.  The spec is inert plan data, like
    :class:`IndexSpec` — the prepare stage partitions the relations'
    column arrays into shared memory (:mod:`repro.parallel`), and the
    execute stage fans the per-shard work out to a worker pool.
    """

    workers: int
    attribute: str
    scheme: str = "hash"

    def describe(self) -> str:
        return f"sharded[{self.workers}x{self.attribute}/{self.scheme}]"


@dataclass(frozen=True)
class JoinPlan:
    """The compiled plan: everything execution needs except built indexes.

    ``algorithm`` is always resolved (never ``"auto"``); ``engine`` is
    only meaningful for the generic algorithm and is likewise resolved
    (``"tuple"`` or ``"batch"``).  ``total_order`` is empty for the
    binary pipeline, whose order lives in ``atom_order`` instead.
    ``choice`` carries the hybrid optimizer's rationale when it ran
    (``algorithm="auto"`` or a profiled run).

    ``algorithm="unified"`` plans carry a :class:`PlanStage` tree in
    ``root_stage``; the flat ``index_specs``/``total_order`` fields stay
    empty and every spec lives on its stage (:meth:`iter_specs` walks
    the tree for the prepare stage).
    """

    query: JoinQuery
    algorithm: str
    engine: str = ""
    index: str = ""
    total_order: tuple[str, ...] = ()
    atom_order: tuple[str, ...] = ()
    index_specs: tuple[IndexSpec, ...] = ()
    dynamic_seed: bool = True
    choice: "PlanChoice | None" = None
    sharding: "ShardingSpec | None" = None
    root_stage: "PlanStage | None" = None

    def spec_for(self, alias: str) -> IndexSpec:
        """The :class:`IndexSpec` prepared for atom ``alias``."""
        for spec in self.iter_specs():
            if spec.alias == alias:
                return spec
        raise KeyError(f"no index spec for alias {alias!r} in plan")

    def iter_specs(self):
        """Every :class:`IndexSpec` this plan needs built.

        Flat plans yield ``index_specs``; unified plans walk the stage
        tree depth-first.  Atom aliases are query-unique, so the
        flattened specs key a single structures dict without collision.
        """
        if self.root_stage is None:
            yield from self.index_specs
            return
        stack = [self.root_stage]
        while stack:
            stage = stack.pop()
            yield from stage.index_specs
            stack.extend(stage.children)

    def describe(self) -> str:
        """Plan summary (CLI / EXPLAIN output).

        Flat plans render one line; unified plans append the nested
        stage-tree form, one indented line per stage.
        """
        head = f"{self.algorithm}"
        if self.engine:
            head += f"/{self.engine}"
        if self.index:
            head += f" index={self.index}"
        if self.total_order:
            head += f" order={','.join(self.total_order)}"
        if self.atom_order:
            head += f" atoms={','.join(self.atom_order)}"
        if self.sharding is not None:
            head += f" {self.sharding.describe()}"
        if self.root_stage is not None:
            head += "\n" + self.root_stage.describe(indent=1)
        return head


@dataclass(frozen=True)
class BoundQuery:
    """The bind stage's output: a query resolved against relations.

    ``relations`` maps each atom alias to a zero-copy
    :meth:`~repro.storage.relation.Relation.renamed` view whose schema
    carries the atom's query attributes.  A view shares its backing rows
    and version counter with the stored relation, so
    :meth:`~repro.storage.relation.Relation.fingerprint` on the view is
    the stored relation's cache identity — the bind output is all the
    prepare stage needs to key the index cache.
    """

    query: JoinQuery
    relations: dict[str, Relation] = field(default_factory=dict)
