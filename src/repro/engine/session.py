"""The session facade: one relation source, one index cache, many joins.

The ROADMAP's serving scenario is heavy repeated query traffic over
slowly-changing relations — exactly the workload where the paper's
per-run ad-hoc index build (§5.15) turns into the dominant wasted cost.
A :class:`Session` binds a relation source (a
:class:`~repro.storage.catalog.Catalog` or a plain mapping) to a
session-scoped :class:`~repro.engine.cache.IndexCache` and a shared
:class:`~repro.obs.metrics.Metrics` registry, then runs every query
through the staged pipeline (:mod:`repro.engine.pipeline`):

>>> from repro import Relation, Session
>>> edges = Relation("E", ("src", "dst"), [(0, 1), (1, 2), (2, 0)])
>>> session = Session({"E1": edges, "E2": edges, "E3": edges})
>>> prepared = session.prepare("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
>>> prepared.execute().count, prepared.execute().count
(3, 3)
>>> session.cache_stats().hits  # E2 reused E1's build (same permutation)
1
>>> session.cache_stats().entries  # (a,b) and the flipped (c,a) layout
2

Cache coherence is by *fingerprint*, not invalidation hooks: mutating a
relation (:meth:`~repro.storage.relation.Relation.insert` /
:meth:`~repro.storage.relation.Relation.extend`) bumps its shared
version counter, so the next prepare misses the stale entries and
rebuilds — :meth:`Session.execute` therefore always sees current data,
while an already-:meth:`~Session.prepare`-d join keeps its snapshot
until re-prepared.  :meth:`invalidate` additionally releases stale
entries' memory eagerly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.core.envflag import resolve_flag
from repro.engine.cache import DEFAULT_CACHE_BYTES, CacheStats, IndexCache
from repro.engine.pipeline import bind, plan, prepare
from repro.engine.prepared import PreparedJoin
from repro.joins.results import JoinResult
from repro.obs.metrics import Metrics
from repro.obs.observer import JoinObserver, NULL_OBSERVER
from repro.planner.query import JoinQuery
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation


class Session:
    """A query session over one relation source, with index reuse.

    **Thread safety.**  One session may be shared by many threads:
    :meth:`prepare` and :meth:`execute` write no session state of their
    own — the staged pipeline's bind/plan stages are pure functions of
    their inputs, the prepare stage publishes builds through the cache's
    compare-and-swap :meth:`~repro.engine.cache.IndexCache.put_if_absent`
    (concurrent misses on one fingerprint each build, one wins, all
    share the canonical structure), and each execution constructs a
    fresh driver over the shared prebuilt structures.  The cache and the
    metrics registry are internally locked; see the thread-safety
    manifest (``python -m repro.analysis --concurrency-manifest``) and
    the "Thread-safety contract" section of ``docs/architecture.md``
    for the verified classification.
    """

    def __init__(self, source: "Catalog | Mapping[str, Relation]",
                 cache_bytes: int = DEFAULT_CACHE_BYTES,
                 cache_entries: "int | None" = None,
                 metrics: "Metrics | None" = None):
        self.source = source
        #: session-wide counter registry; the cache reports into it, and
        #: callers can pass it to an observer for unified accounting
        self.metrics = metrics if metrics is not None else Metrics()
        self.cache = IndexCache(max_bytes=cache_bytes,
                                max_entries=cache_entries,
                                metrics=self.metrics)

    # ------------------------------------------------------------------
    def prepare(self, query: "JoinQuery | str",
                algorithm: str = "generic",
                index: str = "sonic",
                order: "Sequence[str] | None" = None,
                dynamic_seed: bool = True,
                binary_order: "Sequence[str] | None" = None,
                engine: str = "tuple",
                debug: "bool | None" = None,
                profile: "bool | None" = None,
                obs=None,
                parallel: "int | None" = None,
                **index_kwargs) -> PreparedJoin:
        """Compile a query down to a :class:`PreparedJoin` (warm path).

        Parameters mirror :func:`repro.joins.join`; the difference is
        the return value (executable many times) and the build route —
        every index spec goes through the session cache, so repeated
        prepares over unchanged relations skip the build entirely.

        With ``parallel=K`` (or ``REPRO_WORKERS``), what the cache
        holds per relation is the shared-memory shard partitioning
        (:class:`~repro.parallel.shm.ShardedColumns`) instead of a
        built index — the per-shard index builds happen inside worker
        processes.  Call :meth:`PreparedJoin.close` on a sharded
        prepared join to stop its worker pool; the cached segments
        themselves are released when their cache entries age out.
        """
        if obs is not None:
            observer = obs
        elif resolve_flag(profile, "REPRO_PROFILE"):
            observer = JoinObserver()
        else:
            observer = NULL_OBSERVER
        bound = bind(query, self.source, debug=debug, obs=observer)
        join_plan = plan(bound, algorithm=algorithm, index=index, order=order,
                         binary_order=binary_order, engine=engine,
                         dynamic_seed=dynamic_seed, debug=debug, obs=observer,
                         index_kwargs=index_kwargs, parallel=parallel)
        return prepare(bound, join_plan, cache=self.cache, obs=observer)

    def execute(self, query: "JoinQuery | str",
                materialize: bool = False,
                trace_out: "str | None" = None,
                **kwargs) -> JoinResult:
        """Prepare-and-run in one call, always against current data.

        Re-prepares on every call — cheap when the cache is warm, and
        the fingerprint keying makes mutations visible immediately
        (unlike holding on to a :class:`PreparedJoin`, which pins its
        prepare-time snapshot).
        """
        prepared = self.prepare(query, **kwargs)
        try:
            return prepared.execute(materialize=materialize,
                                    trace_out=trace_out)
        finally:
            # one-shot semantics: a sharded prepared join must not leak
            # its worker pool (no-op for ordinary plans); hold on to a
            # PreparedJoin from prepare() to keep a pool warm instead
            prepared.close()

    # ------------------------------------------------------------------
    def cache_stats(self) -> CacheStats:
        """Point-in-time cache accounting (hits/misses/evictions/bytes)."""
        return self.cache.stats()

    def invalidate(self, relation: "Relation | str") -> int:
        """Eagerly drop cache entries built from ``relation``.

        Accepts a relation or a name resolved against the session
        source.  Purely a memory-release aid — stale entries already
        stop matching once the relation's version moves on.  Returns
        the number of entries dropped.
        """
        if isinstance(relation, str):
            if isinstance(self.source, Catalog):
                relation = self.source.get(relation)
            else:
                relation = self.source[relation]
        return self.cache.invalidate_relation(relation)

    def clear_cache(self) -> None:
        """Drop every cached structure (counters keep their history)."""
        self.cache.clear()

    def close(self) -> None:
        """Release cached structures; the session stays usable but cold."""
        self.cache.clear()

    # ------------------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        stats = self.cache.stats()
        return (f"Session(entries={stats.entries}, bytes={stats.bytes}, "
                f"hits={stats.hits}, misses={stats.misses})")
