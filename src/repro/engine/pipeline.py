"""The staged compile pipeline: **bind → plan → prepare** (→ execute).

The seed executor did all four stages inline in one monolithic
``join()``; this module splits them into explicit, separately-callable
stages with inert artifacts in between:

* :func:`bind` — parse the query if needed, resolve each atom against a
  :class:`~repro.storage.catalog.Catalog` or mapping, and (in debug
  mode) run the RA301/RA304/RA305 plan checks.  Output:
  :class:`~repro.engine.ir.BoundQuery`.
* :func:`plan` — resolve ``"auto"`` algorithm/engine choices, derive the
  total attribute order (or the binary pipeline's atom order), and emit
  one :class:`~repro.engine.ir.IndexSpec` per supporting structure.
  Nothing is built.  Output: :class:`~repro.engine.ir.JoinPlan`.
* :func:`prepare` — turn every spec into a built structure, going
  through a :class:`~repro.engine.cache.IndexCache` when one is given
  (the :class:`~repro.engine.session.Session` warm path) or building
  fresh when not (the :func:`repro.joins.join` cold path, preserving
  the paper's build-included timing semantics, §5.15).  Output:
  :class:`~repro.engine.prepared.PreparedJoin`, executable many times.

Each stage runs under a tracer span of its own name, so a profiled run
shows ``bind`` / ``plan`` (containing ``optimize``) / ``prepare``
(containing per-atom ``build_index`` spans) ahead of the driver's
``probe`` — the same observable skeleton the seed emitted, plus the
stage boundaries.

Unlike the seed, index options that an algorithm cannot honor raise
:class:`~repro.errors.ConfigurationError` at plan time instead of being
silently swallowed (e.g. ``sonic_bucket_size`` with
``algorithm="binary"``).  ``algorithm="auto"`` validates against the
Generic Join's option set, since that is the algorithm the options
would apply to if chosen; when the optimizer picks the binary pipeline
instead, generic-only options are unused, exactly as in the seed.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import replace

from repro.analysis.plancheck import check_join_plan, check_plan
from repro.core.adapter import IndexAdapter
from repro.core.config import SonicConfig
from repro.core.envflag import resolve_flag
from repro.engine.cache import IndexCache, estimate_structure_bytes
from repro.engine.ir import (
    HASHTABLE_KIND,
    TUPLESET_KIND,
    BoundQuery,
    IndexSpec,
    JoinPlan,
    PlanStage,
    ShardingSpec,
    canonical_options,
    stage_alias,
)
from repro.engine.prepared import PreparedJoin
from repro.errors import ConfigurationError, QueryError, SchemaError
from repro.indexes.lazy import LAZY_CAPABLE_KINDS, LazyTrieAdapter
from repro.indexes.registry import make_index
from repro.joins.binary import build_stage_table, plan_pipeline
from repro.joins.executor import ALGORITHMS, ENGINES, resolve_relations
from repro.joins.results import Stopwatch
from repro.obs.observer import NULL_OBSERVER
from repro.planner.cardinality import Statistics
from repro.planner.hypergraph import Hypergraph
from repro.planner.optimizer import (
    HybridOptimizer,
    PlanChoice,
    cyclic_core,
    greedy_join_order,
)
from repro.planner.qptree import connectivity_order
from repro.planner.query import Atom, JoinQuery, parse_query
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

#: index options each algorithm can honor; anything else raises
#: ConfigurationError at plan time (the seed swallowed them silently)
_ALLOWED_OPTIONS = {
    "generic": frozenset({"sonic_overallocation", "sonic_bucket_size",
                          "index_options", "lazy"}),
    "hashtrie": frozenset({"lazy", "singleton_pruning"}),
    "binary": frozenset(),
    "leapfrog": frozenset(),
    "recursive": frozenset(),
    # the unified planner builds generic sub-stages, so it honors the
    # generic option set (including lazy COLT builds)
    "unified": frozenset({"sonic_overallocation", "sonic_bucket_size",
                          "index_options", "lazy"}),
}


def bind(query: "JoinQuery | str",
         source: "Catalog | Mapping[str, Relation]",
         debug: "bool | None" = None,
         obs=None) -> BoundQuery:
    """The bind stage: query text → query resolved against relations.

    ``debug`` (default: the ``REPRO_DEBUG`` environment variable) runs
    the relation-level plan checks (RA301/RA304/RA305) on the resolved
    atoms, raising :class:`~repro.errors.PlanValidationError` early.
    """
    observer = obs if obs is not None else NULL_OBSERVER
    if isinstance(query, str):
        query = parse_query(query)
    with observer.tracer.span("bind"):
        relations = resolve_relations(query, source)
        if resolve_flag(debug, "REPRO_DEBUG"):
            check_plan(query, relations=relations)
    return BoundQuery(query=query, relations=relations)


def plan(bound: BoundQuery,
         algorithm: str = "generic",
         index: str = "sonic",
         order: "Sequence[str] | None" = None,
         binary_order: "Sequence[str] | None" = None,
         engine: str = "tuple",
         dynamic_seed: bool = True,
         debug: "bool | None" = None,
         obs=None,
         index_kwargs: "Mapping[str, object] | None" = None,
         parallel: "int | None" = None) -> JoinPlan:
    """The plan stage: a bound query → a fully-resolved :class:`JoinPlan`.

    Runs the hybrid optimizer when ``algorithm="auto"`` or the observer
    is enabled (the optimizer's estimate is part of every profile), pins
    the total attribute order (or the binary atom order), validates the
    index options against the resolved algorithm, and emits one
    :class:`~repro.engine.ir.IndexSpec` per supporting structure.  The
    plan is inert — nothing is built until :func:`prepare`.

    ``parallel`` (default: the ``REPRO_WORKERS`` environment variable;
    0 / unset means single-process) plants a
    :class:`~repro.engine.ir.ShardingSpec` on the plan: the prepare
    stage then partitions the relations into that many shared-memory
    shards on the plan's leading attribute, and execution fans out to a
    worker-process pool (:mod:`repro.parallel`).  ``parallel=1`` is a
    valid degenerate fleet — one worker process, useful as the
    like-for-like baseline when measuring fan-out speedup.
    """
    observer = obs if obs is not None else NULL_OBSERVER
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; choose from {ENGINES}"
        )
    query, relations = bound.query, bound.relations
    kwargs = dict(index_kwargs or {})
    debug_on = resolve_flag(debug, "REPRO_DEBUG")

    with observer.tracer.span("plan"):
        # the optimizer's estimate is part of every profile (estimated vs
        # actual), so an enabled observer computes it even off the auto path
        choice = None
        stats = None
        if algorithm in ("auto", "unified") or observer.enabled:
            # the unified planner always needs statistics: the stage
            # split is a per-component optimizer decision
            with observer.tracer.span("optimize"):
                stats = Statistics.collect(relations.values())
                choice = HybridOptimizer().choose(query, stats)
        requested = algorithm
        if algorithm == "auto":
            algorithm = "binary" if choice.algorithm == "binary" else "generic"
        _validate_index_kwargs(requested, algorithm, index, kwargs)

        if algorithm == "unified":
            result = _plan_unified(query, relations, order, binary_order,
                                   index, engine, dynamic_seed, choice,
                                   stats, kwargs)
        elif algorithm == "binary":
            result = _plan_binary(query, relations, binary_order, stats,
                                  dynamic_seed, choice)
        else:
            total = tuple(order) if order else connectivity_order(query)
            if debug_on:
                check_plan(query, order=total)
            if algorithm == "generic":
                result = _plan_generic(query, relations, total, index, engine,
                                       dynamic_seed, choice, kwargs)
            elif algorithm == "hashtrie":
                result = _plan_hashtrie(query, relations, total, dynamic_seed,
                                        choice, kwargs)
            elif algorithm == "leapfrog":
                result = _plan_leapfrog(query, relations, total, dynamic_seed,
                                        choice)
            else:
                result = _plan_recursive(query, total, dynamic_seed, choice)
        workers = _resolve_workers(parallel)
        if workers and result.algorithm == "unified":
            raise ConfigurationError(
                "unified stage-tree plans do not support sharded execution; "
                "drop parallel= or choose a flat algorithm")
        if workers:
            # shard on the leading attribute: every result tuple binds
            # it to exactly one value, so shard results are disjoint
            attribute = (result.total_order[0] if result.total_order
                         else connectivity_order(query)[0])
            result = replace(result, sharding=ShardingSpec(
                workers=workers, attribute=attribute))
        if debug_on:
            check_join_plan(result, relations=relations)
    return result


def _resolve_workers(parallel: "int | None") -> int:
    # imported lazily: repro.parallel sits beside the engine and its
    # worker module re-enters this pipeline inside worker processes,
    # so the module-scope dependency stays one-directional
    from repro.parallel.pool import resolve_workers

    return resolve_workers(parallel)


def prepare(bound: BoundQuery, join_plan: JoinPlan,
            cache: "IndexCache | None" = None,
            obs=None) -> PreparedJoin:
    """The prepare stage: specs → built structures → a :class:`PreparedJoin`.

    With a ``cache``, every spec is first looked up under
    ``(relation fingerprint, spec suffix)`` — a hit skips the build
    entirely (and two atoms over the same stored relation with the same
    spec share one build *within* a single prepare, the self-join alias
    case).  Without one, every structure is built fresh — the cold-path
    contract of :func:`repro.joins.join`.

    The wall time spent building is returned on the prepared join as
    ``build_seconds`` and charged to the **first** execution's
    ``metrics.build_seconds`` (§5.15's build-included timing); repeat
    executions report zero build.  Cache hit/miss counters live in the
    cache's own metrics registry and are mirrored into an enabled
    observer; fresh builds are recorded as ``build_index`` spans either
    way.
    """
    observer = obs if obs is not None else NULL_OBSERVER
    obs_enabled = observer.enabled
    use_cache = cache is not None and cache.enabled
    if join_plan.sharding is not None:
        return _prepare_sharded(bound, join_plan, cache if use_cache else None,
                                observer)
    structures: dict[str, object] = {}
    watch = Stopwatch()
    with observer.tracer.span("prepare"):
        for spec in join_plan.iter_specs():
            relation = bound.relations[spec.alias]
            key = None
            structure = None
            if use_cache:
                try:
                    key = cache.key_for(relation, spec.cache_key_suffix())
                except TypeError:
                    key = None  # unhashable option value: uncacheable spec
                if key is not None:
                    structure = cache.get(key)
                if obs_enabled:
                    observer.metrics.inc(
                        "cache.hit" if structure is not None else "cache.miss")
            if structure is None:
                if obs_enabled:
                    build_t0 = Stopwatch.now_ns()
                structure = _build_structure(spec, relation)
                if obs_enabled:
                    duration = Stopwatch.now_ns() - build_t0
                    observer.record_build(spec.alias, duration)
                    observer.tracer.add_span("build_index", build_t0, duration,
                                             alias=spec.alias, index=spec.kind,
                                             tuples=len(relation))
                if key is not None:
                    # compare-and-swap publish: when another thread built
                    # the same key first, adopt its structure so every
                    # concurrent preparer shares one canonical build and
                    # the LRU byte accounting never double-charges
                    if isinstance(structure, LazyTrieAdapter):
                        # hook the deepen callback *before* publishing, so
                        # no descent can slip between publish and hookup;
                        # a CAS loss discards this adapter (nothing built
                        # yet) and adopts the winner's, callback included
                        structure.on_deepen = _depth_upgrader(
                            cache, key, len(relation), relation.arity)
                        structure = cache.put_if_absent(
                            key, structure, estimate_structure_bytes(
                                structure, len(relation), relation.arity),
                            built_depth=structure.built_depth)
                    else:
                        structure = cache.put_if_absent(
                            key, structure, estimate_structure_bytes(
                                structure, len(relation), relation.arity))
            structures[spec.alias] = structure
    build_seconds = watch.lap()
    return PreparedJoin(bound, join_plan, structures, build_seconds)


def _depth_upgrader(cache: IndexCache, key: tuple, tuples: int, arity: int):
    """The lazy adapter's deepen callback: upgrade the cached entry in
    place — new ``built_depth``, re-estimated byte charge."""
    def _on_deepen(adapter) -> None:
        cache.upgrade_depth(key, adapter.built_depth,
                            estimate_structure_bytes(adapter, tuples, arity))
    return _on_deepen


def _prepare_sharded(bound: BoundQuery, join_plan: JoinPlan,
                     cache: "IndexCache | None", observer) -> PreparedJoin:
    """The prepare stage for a sharded plan: partition, don't build.

    Indexes are built *inside the workers* (each over its shard, via
    the same bulk-build prepare path); what the parent prepares — and
    what the session cache holds under the usual fingerprint×options
    key — is the :class:`~repro.parallel.shm.ShardedColumns` transport:
    each relation's column arrays hash-partitioned into shared memory.
    The cache suffix pins the scheme, worker count and the partition
    attribute's *storage position* (renamed views share fingerprints,
    so position — not name — is the stable part), meaning plans that
    shard the same storage the same way share one partitioning.
    """
    # lazy import, same one-directional rationale as _resolve_workers
    from repro.parallel.partition import build_sharded_columns

    obs_enabled = observer.enabled
    use_cache = cache is not None
    sharding = join_plan.sharding
    structures: dict[str, object] = {}
    local: dict[tuple, object] = {}
    watch = Stopwatch()
    with observer.tracer.span("prepare"):
        # every atom ships to the workers — not just index_specs, which
        # for a binary plan omit the first atom (the probe side)
        for atom in join_plan.query.atoms:
            relation = bound.relations[atom.alias]
            position = (relation.schema.position(sharding.attribute)
                        if sharding.attribute in relation.schema else None)
            suffix = ("shards", sharding.scheme, sharding.workers, position)
            key = None
            if use_cache:
                key = cache.key_for(relation, suffix)
                columns = cache.get(key)
                if obs_enabled:
                    observer.metrics.inc(
                        "cache.hit" if columns is not None else "cache.miss")
            else:
                # the cold path still shares one partitioning between
                # self-join aliases of the same storage within this call
                columns = local.get((relation.fingerprint(), suffix))
            if columns is None:
                if obs_enabled:
                    build_t0 = Stopwatch.now_ns()
                columns = build_sharded_columns(relation, position,
                                                sharding.workers)
                if obs_enabled:
                    duration = Stopwatch.now_ns() - build_t0
                    observer.tracer.add_span(
                        "partition_shards", build_t0, duration,
                        alias=atom.alias, workers=sharding.workers,
                        tuples=len(relation))
                if key is not None:
                    published = cache.put_if_absent(
                        key, columns, estimate_structure_bytes(
                            columns, len(relation), relation.arity))
                    if published is not columns:
                        columns.close()  # lost the CAS: adopt the winner
                        columns = published
                else:
                    local[(relation.fingerprint(), suffix)] = columns
            structures[atom.alias] = columns
    build_seconds = watch.lap()
    return PreparedJoin(bound, join_plan, structures, build_seconds,
                        owned_shards=not use_cache)


# ----------------------------------------------------------------------
# Per-algorithm planners
# ----------------------------------------------------------------------

def _resolve_generic_engine(index: str, engine: str) -> str:
    if engine == "auto":
        # SUPPORTS_BATCH is a class attribute, so one arity-2 probe
        # instance answers for every adapter the prepare stage will build
        return "batch" if make_index(index, 2).SUPPORTS_BATCH else "tuple"
    return engine


def _generic_options(index: str, kwargs: dict) -> dict:
    options = dict(kwargs.get("index_options") or {})
    if index == "sonic":
        options["bucket_size"] = kwargs.get("sonic_bucket_size", 8)
        options["overallocation"] = kwargs.get("sonic_overallocation", 2.0)
    return options


def _resolve_lazy(index: str, kwargs: dict) -> bool:
    lazy = bool(kwargs.get("lazy", False))
    if lazy and index not in LAZY_CAPABLE_KINDS:
        raise ConfigurationError(
            f"index {index!r} has no level-at-a-time build; lazy=True "
            f"requires one of {sorted(LAZY_CAPABLE_KINDS)}")
    return lazy


def _plan_generic(query: JoinQuery, relations: Mapping[str, Relation],
                  total: tuple[str, ...], index: str, engine: str,
                  dynamic_seed: bool, choice, kwargs: dict) -> JoinPlan:
    engine = _resolve_generic_engine(index, engine)
    options = _generic_options(index, kwargs)
    lazy = _resolve_lazy(index, kwargs)
    specs = tuple(
        _structure_spec(relations[atom.alias], atom.alias, index, total,
                        options, lazy=lazy)
        for atom in query.atoms
    )
    return JoinPlan(query=query, algorithm="generic", engine=engine,
                    index=index, total_order=total, index_specs=specs,
                    dynamic_seed=dynamic_seed, choice=choice)


def _plan_hashtrie(query: JoinQuery, relations: Mapping[str, Relation],
                   total: tuple[str, ...], dynamic_seed: bool, choice,
                   kwargs: dict) -> JoinPlan:
    options = {
        "lazy": bool(kwargs.get("lazy", True)),
        "singleton_pruning": bool(kwargs.get("singleton_pruning", True)),
    }
    specs = tuple(
        _structure_spec(relations[atom.alias], atom.alias, "hashtrie", total,
                        options)
        for atom in query.atoms
    )
    return JoinPlan(query=query, algorithm="hashtrie", total_order=total,
                    index_specs=specs, dynamic_seed=dynamic_seed,
                    choice=choice)


def _plan_leapfrog(query: JoinQuery, relations: Mapping[str, Relation],
                   total: tuple[str, ...], dynamic_seed: bool,
                   choice) -> JoinPlan:
    # "sorted": force the trie's sort during prepare (LFTJ seeks need it
    # ordered up front); distinguishes these specs from a generic join
    # over index="sortedtrie", whose sort lazily lands in the probe phase
    specs = tuple(
        _structure_spec(relations[atom.alias], atom.alias, "sortedtrie",
                        total, {"sorted": True})
        for atom in query.atoms
    )
    return JoinPlan(query=query, algorithm="leapfrog", total_order=total,
                    index_specs=specs, dynamic_seed=dynamic_seed,
                    choice=choice)


def _plan_recursive(query: JoinQuery, total: tuple[str, ...],
                    dynamic_seed: bool, choice) -> JoinPlan:
    specs = tuple(
        IndexSpec(alias=atom.alias, kind=TUPLESET_KIND,
                  attribute_order=atom.attributes,
                  permutation=tuple(range(atom.arity)))
        for atom in query.atoms
    )
    return JoinPlan(query=query, algorithm="recursive", total_order=total,
                    index_specs=specs, dynamic_seed=dynamic_seed,
                    choice=choice)


def _plan_binary(query: JoinQuery, relations: Mapping[str, Relation],
                 binary_order: "Sequence[str] | None", stats,
                 dynamic_seed: bool, choice) -> JoinPlan:
    if binary_order is not None:
        atom_order = list(binary_order)
        if sorted(atom_order) != sorted(a.alias for a in query.atoms):
            raise QueryError(
                f"join order {atom_order} does not cover the query atoms")
    else:
        if stats is None:
            stats = Statistics.collect(relations.values())
        atom_order = greedy_join_order(query, stats)
    stages, _output_attrs = plan_pipeline(query, relations, atom_order)
    specs = tuple(
        IndexSpec(alias=stage["alias"], kind=HASHTABLE_KIND,
                  attribute_order=stage["key_attrs"] + stage["payload_attrs"],
                  permutation=(stage["key_positions"]
                               + stage["payload_positions"]),
                  key_arity=len(stage["key_attrs"]))
        for stage in stages
    )
    return JoinPlan(query=query, algorithm="binary",
                    atom_order=tuple(atom_order), index_specs=specs,
                    dynamic_seed=dynamic_seed, choice=choice)


def _plan_unified(query: JoinQuery, relations: Mapping[str, Relation],
                  order: "Sequence[str] | None",
                  binary_order: "Sequence[str] | None",
                  index: str, engine: str, dynamic_seed: bool,
                  choice: PlanChoice, stats: Statistics,
                  kwargs: dict) -> JoinPlan:
    """Compile a stage-tree plan: per-component binary/WCOJ stages.

    GYO reduction splits the query's hypergraph: the surviving edges —
    the **cyclic core** — get a Generic Join sub-stage (worst-case
    optimal where the AGM bound actually bites), the removed ears get a
    binary hash pipeline stage probing *into the core stage's output*
    (which joins as a synthetic ``stage:core`` relation).  A query that
    is entirely acyclic, entirely cyclic, or a single atom degenerates
    to one root stage running whatever the hybrid optimizer picked —
    the unified plan never does worse than the better flat plan by
    construction of the split.
    """
    engine = _resolve_generic_engine(index, engine)
    options = _generic_options(index, kwargs)
    lazy = _resolve_lazy(index, kwargs)

    def generic_stage(label: str, sub_query: JoinQuery,
                      total: tuple[str, ...], stage_choice) -> PlanStage:
        specs = tuple(
            _structure_spec(relations[atom.alias], atom.alias, index, total,
                            options, lazy=lazy)
            for atom in sub_query.atoms
        )
        return PlanStage(label=label, algorithm="generic", query=sub_query,
                         output=total, engine=engine, index=index,
                         total_order=total, index_specs=specs,
                         choice=stage_choice)

    def binary_stage(label: str, sub_query: JoinQuery,
                     atom_order: Sequence[str],
                     children: tuple = (),
                     stage_choice=None) -> PlanStage:
        stages, output_attrs = plan_pipeline(sub_query, relations, atom_order)
        specs = tuple(
            IndexSpec(alias=stage["alias"], kind=HASHTABLE_KIND,
                      attribute_order=(stage["key_attrs"]
                                       + stage["payload_attrs"]),
                      permutation=(stage["key_positions"]
                                   + stage["payload_positions"]),
                      key_arity=len(stage["key_attrs"]))
            for stage in stages
        )
        return PlanStage(label=label, algorithm="binary", query=sub_query,
                         output=tuple(output_attrs),
                         atom_order=tuple(atom_order), index_specs=specs,
                         children=children, choice=stage_choice)

    core = cyclic_core(Hypergraph.from_query(query))
    aliases = [atom.alias for atom in query.atoms]

    if core and core != set(aliases):
        # mixed plan: WCOJ over the cyclic core, binary ears on top
        core_atoms = tuple(a for a in query.atoms if a.alias in core)
        core_query = JoinQuery(core_atoms)
        core_order = tuple(connectivity_order(core_query))
        core_choice = HybridOptimizer().choose(core_query, stats)
        child = generic_stage("core", core_query, core_order, core_choice)

        feeder = stage_alias(child.label)
        synthetic = Atom(relation=feeder, attributes=child.output,
                         alias=feeder)
        ears = [a for a in query.atoms if a.alias not in core]
        parent_query = JoinQuery((synthetic,) + tuple(ears))
        # ear order: greedy — connected to the bound attributes first,
        # then smallest relation (the core output's cardinality is
        # unknown at plan time, so it always leads)
        atom_order = [feeder]
        bound_attrs = set(child.output)
        remaining = {a.alias for a in ears}
        while remaining:
            connected = [al for al in sorted(remaining)
                         if set(query.attributes_of(al)) & bound_attrs]
            pick = min(connected or sorted(remaining),
                       key=lambda al: (stats.cardinality(al), al))
            atom_order.append(pick)
            remaining.discard(pick)
            bound_attrs |= set(query.attributes_of(pick))
        root_choice = PlanChoice(
            "binary",
            "GYO ear atoms: acyclic attachments probe the core stage's "
            "output with binary hash joins",
            choice.agm_bound, choice.binary_estimate)
        root = binary_stage("root", parent_query, atom_order,
                            children=(child,), stage_choice=root_choice)
    elif choice.algorithm == "binary":
        # fully acyclic (or single-atom) query: one binary root stage
        if binary_order is not None:
            atom_order = list(binary_order)
            if sorted(atom_order) != sorted(aliases):
                raise QueryError(
                    f"join order {atom_order} does not cover the query atoms")
        else:
            atom_order = greedy_join_order(query, stats)
        root = binary_stage("root", query, atom_order, stage_choice=choice)
    else:
        # fully cyclic (or growth-prone) query: one generic root stage
        total = tuple(order) if order else tuple(connectivity_order(query))
        root = generic_stage("root", query, total, choice)

    return JoinPlan(query=query, algorithm="unified", engine=engine,
                    index=index, dynamic_seed=dynamic_seed, choice=choice,
                    root_stage=root)


def _structure_spec(relation: Relation, alias: str, kind: str,
                    total: Sequence[str],
                    options: "Mapping[str, object] | None",
                    lazy: bool = False) -> IndexSpec:
    """An :class:`IndexSpec` for a registry-index structure under ``total``.

    Mirrors :class:`~repro.core.adapter.IndexAdapter`'s order projection
    so the spec's permutation is exactly the one the built adapter will
    apply (and the one the cache keys on).
    """
    attribute_order = tuple(a for a in total if a in relation.schema)
    if len(attribute_order) != relation.arity:
        # same defect, same exception as IndexAdapter would raise at
        # build time — the plan stage just surfaces it earlier
        missing = set(relation.schema.attributes) - set(total)
        raise SchemaError(
            f"total order {list(total)} does not cover attributes "
            f"{sorted(missing)} of relation {relation.name!r}"
        )
    return IndexSpec(alias=alias, kind=kind, attribute_order=attribute_order,
                     permutation=relation.schema.permutation_to(
                         attribute_order),
                     options=canonical_options(options), lazy=lazy)


def _validate_index_kwargs(requested: str, resolved: str, index: str,
                           kwargs: Mapping[str, object]) -> None:
    """Reject index options the chosen algorithm cannot honor.

    ``requested`` is what the caller asked for (possibly ``"auto"``),
    ``resolved`` the concrete algorithm; ``"auto"`` is validated against
    the Generic Join's option set (see module docstring).
    """
    if not kwargs:
        return
    allowed = _ALLOWED_OPTIONS["generic" if requested == "auto"
                               else resolved]
    unknown = sorted(set(kwargs) - allowed)
    if unknown:
        raise ConfigurationError(
            f"algorithm {resolved!r} cannot honor index option(s) "
            f"{unknown}; it accepts {sorted(allowed) or 'none'}"
        )
    if (requested != "auto" and resolved in ("generic", "unified")
            and index != "sonic"
            and any(k.startswith("sonic_") for k in kwargs)):
        sonic_only = sorted(k for k in kwargs if k.startswith("sonic_"))
        raise ConfigurationError(
            f"index {index!r} cannot honor Sonic option(s) {sonic_only}; "
            "they apply only with index='sonic'"
        )


# ----------------------------------------------------------------------
# Structure builders (the prepare stage's workhorses)
# ----------------------------------------------------------------------

def _build_structure(spec: IndexSpec, relation: Relation) -> object:
    """Build the structure a spec describes, from ``relation``'s rows."""
    if spec.kind == HASHTABLE_KIND:
        key_arity = spec.key_arity or 0
        return build_stage_table(relation, spec.permutation[:key_arity],
                                 spec.permutation[key_arity:])
    if spec.kind == TUPLESET_KIND:
        return frozenset(relation.rows)
    if spec.lazy:
        # O(1) prepare: pin the column snapshot, build nothing — levels
        # materialize on first descent and their cost surfaces in the
        # executing run's metrics.build_seconds (§5.15 accounting)
        return LazyTrieAdapter(relation, spec.kind, spec.attribute_order,
                               spec.permutation, options=dict(spec.options))
    options = dict(spec.options)
    presort = options.pop("sorted", False)
    if spec.kind == "sonic":
        config = SonicConfig.for_tuples(
            max(len(relation), 1),
            bucket_size=options.pop("bucket_size", 8),
            overallocation=options.pop("overallocation", 2.0),
        )
        index = make_index("sonic", relation.arity, config=config, **options)
    else:
        index = make_index(spec.kind, relation.arity, **options)
    adapter = IndexAdapter(relation, index, spec.attribute_order)
    adapter.build()
    if presort:
        index.rows  # force the SortedTrie sort inside the build phase
    return index
