"""Registry mapping index names to factories.

The benchmark harness sweeps "every index in the study" (Figs 4–9, 13, 14,
18, Table 1); this registry is the single list it sweeps.  Factories take
``arity`` plus optional keyword overrides and return a fresh, empty index.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.errors import ConfigurationError
from repro.indexes.base import TupleIndex

_REGISTRY: dict[str, Callable[..., TupleIndex]] = {}


def register_index(name: str, factory: Callable[..., TupleIndex],
                   replace: bool = False) -> None:
    """Register ``factory`` under ``name`` for harness sweeps."""
    if name in _REGISTRY and not replace:
        raise ConfigurationError(f"index {name!r} already registered")
    # registration happens at import time (repro.indexes.__init__), under
    # the import lock; the registry is only read during sweeps
    _REGISTRY[name] = factory  # repro: noqa[RA701]


def make_index(name: str, arity: int, **kwargs) -> TupleIndex:
    """Instantiate a fresh index by registry name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown index {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    return factory(arity, **kwargs)


def registered_indexes() -> list[str]:
    """All registry names, sorted."""
    return sorted(_REGISTRY)


def registered_factories() -> dict[str, Callable[..., TupleIndex]]:
    """Snapshot of the registry (name → factory) for introspection.

    The contract checker (:mod:`repro.analysis.contracts`) walks this to
    verify every registered class against the §4.1 plug-in contract; the
    copy keeps callers from mutating the live registry.
    """
    return dict(_REGISTRY)


def prefix_capable_indexes() -> list[str]:
    """Names of registered indexes that support prefix operations.

    This is the candidate set for the prefix-lookup/count experiments
    (Figs 6–9) and for supporting the Generic Join.
    """
    names = []
    for name in sorted(_REGISTRY):
        probe = _REGISTRY[name](2)
        if probe.SUPPORTS_PREFIX:
            names.append(name)
    return names


def batch_capable_indexes() -> list[str]:
    """Names of registered indexes with a *native* vectorized batch kernel.

    These are the structures ``engine="auto"`` will run batch-at-a-time;
    everything else still joins under ``engine="batch"`` through the
    per-value fallback shim (see
    :class:`repro.indexes.base.FallbackBatchCursor`).
    """
    names = []
    for name in sorted(_REGISTRY):
        probe = _REGISTRY[name](2)
        if probe.SUPPORTS_BATCH:
            names.append(name)
    return names


def ensure_registered(names: Iterable[str]) -> None:
    """Raise if any of ``names`` is not registered (harness sanity check)."""
    missing = [n for n in names if n not in _REGISTRY]
    if missing:
        raise ConfigurationError(f"indexes not registered: {missing}")
