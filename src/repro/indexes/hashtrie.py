"""Umbra-style hash trie (Freitag et al., VLDB'20 — the paper's "Hash-Trie").

The hash trie is the index behind Umbra's worst-case optimal join.  Its two
signature optimizations, both reproduced here as toggleable flags so the
ablation bench can isolate them:

* **Lazy child expansion** — the build phase materializes only the *first*
  level eagerly; an entry's subtree (the hash table over the next
  attribute) is built the first time a probe actually descends into it.
  Entries never touched by the join never pay for deeper levels.
* **Singleton pruning** — an entry whose chain holds exactly one tuple is
  never expanded at all; probes below it compare directly against the
  stored tuple.

The paper's §5.15 critique is that both optimizations backfire under skew
or when "the removed layers … can be useful in the join processing": lazily
expanding a hot entry means re-reading and redistributing its whole chain
at probe time, inside the join's inner loop.  This implementation performs
that redistribution at the same points, and counts it
(:attr:`HashTrie.expansions`, :attr:`HashTrie.redistributed_tuples`) so the
benchmarks can show *why* Hash-Trie loses on the Fig 15 workload.

Umbra keys its tables on attribute *hashes* and defers value verification;
we key on values (Python dicts re-verify automatically) — the behavioural
drivers of the comparison (lazy redistribution cost, pruning) are
unaffected, and point lookups stay exact.

**Concurrency note (deliberate, GIL-scoped).**  Lazy expansion mutates
the trie on the *probe* path: ``node.table[value] = expanded`` replaces
a chain with its expanded subtree.  Under CPython's GIL this publication
is benign without a lock — it is an idempotent replacement of one dict
*value* (two racing probes build equal subtrees from the same frozen
chain and one atomic store wins; no new keys appear during probes, and
chains are never mutated in place — expansion builds a fresh object from
the chain and swaps it in).  The expansion *counters* do drift under
races, which is accepted: they are single-run diagnostics, not join
results.  On free-threaded builds this structure would need per-node
publication CAS; the thread-safety manifest therefore classifies the
hashtrie driver as safe over *prebuilt shared* structures only under the
GIL contract documented in ``docs/architecture.md``.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import ClassVar

from repro.errors import SchemaError
from repro.indexes.base import CursorBatchCursor, PrefixCursor, TupleIndex


class _Node:
    """An expanded level: component value → child entry.

    A child entry is either another ``_Node`` (already expanded), or a list
    of rows (an unexpanded chain), or — under singleton pruning — a
    single-row list that will never expand.
    """

    __slots__ = ("table", "depth")

    def __init__(self, depth: int):
        self.table: dict[object, "_Node | list[tuple]"] = {}
        self.depth = depth


class HashTrie(TupleIndex):
    """Lazily-expanded trie of hash tables (Umbra's WCOJ index)."""

    NAME: ClassVar[str] = "hashtrie"
    SUPPORTS_BATCH: ClassVar[bool] = True

    def __init__(self, arity: int, lazy: bool = True, singleton_pruning: bool = True):
        super().__init__(arity)
        self._lazy = lazy
        self._singleton_pruning = singleton_pruning
        self._root = _Node(depth=0)
        # instrumentation for the Fig 15 story
        self.expansions = 0
        self.redistributed_tuples = 0

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        chain = self._root.table.get(row[0])
        if chain is None:
            self._root.table[row[0]] = [row]
            self._size += 1
            return
        if isinstance(chain, _Node):
            self._insert_expanded(chain, row)
            return
        if row in chain:
            return
        chain.append(row)
        self._size += 1
        if not self._lazy:
            self._root.table[row[0]] = self._expand_chain(chain, depth=1)

    def _insert_expanded(self, node: _Node, row: tuple) -> None:
        """Insert into an already-expanded subtree (eager mode / post-expansion)."""
        while True:
            depth = node.depth
            if depth == self.arity - 1:
                if row[depth] not in node.table:
                    node.table[row[depth]] = [row]
                    self._size += 1
                return
            child = node.table.get(row[depth])
            if child is None:
                node.table[row[depth]] = [row]
                self._size += 1
                return
            if isinstance(child, list):
                if row in child:
                    return
                child.append(row)
                self._size += 1
                if not self._lazy:
                    node.table[row[depth]] = self._expand_chain(child, depth + 1)
                return
            node = child

    # ------------------------------------------------------------------
    # Lazy expansion
    # ------------------------------------------------------------------
    def _expand_chain(self, chain: list[tuple], depth: int) -> "_Node | list[tuple]":
        """Redistribute a chain into a hash table over component ``depth``.

        This is the work Umbra defers to probe time: the whole chain is
        re-read and every tuple re-hashed into the next level.  Singleton
        chains are left alone when pruning is on.
        """
        if self._singleton_pruning and len(chain) == 1:
            return chain
        if depth >= self.arity:
            return chain
        self.expansions += 1
        self.redistributed_tuples += len(chain)
        node = _Node(depth=depth)
        for row in chain:
            bucket = node.table.setdefault(row[depth], [])
            bucket.append(row)
        return node

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        entry = self._root.table.get(row[0])
        while entry is not None:
            if isinstance(entry, list):
                return row in entry
            entry = entry.table.get(row[entry.depth])
        return False

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        prefix = self._check_prefix(tuple(prefix))
        if not prefix:
            yield from iter(self)
            return
        entry = self._lookup_entry(prefix)
        if entry is None:
            return
        width = len(prefix)
        if isinstance(entry, list):
            for row in entry:
                if row[:width] == prefix:
                    yield row
            return
        yield from self._iter_subtree(entry)

    def count_prefix(self, prefix: tuple) -> int:
        prefix = self._check_prefix(tuple(prefix))
        if not prefix:
            return self._size
        entry = self._lookup_entry(prefix)
        if entry is None:
            return 0
        width = len(prefix)
        if isinstance(entry, list):
            return sum(1 for row in entry if row[:width] == prefix)
        return self._subtree_size(entry)

    def _lookup_entry(self, prefix: tuple):
        """Follow ``prefix``, expanding chains on the way (the lazy cost)."""
        node = self._root
        while True:
            depth = node.depth
            entry = node.table.get(prefix[depth])
            if entry is None:
                return None
            if isinstance(entry, list):
                if depth + 1 >= len(prefix) or depth + 1 >= self.arity:
                    return entry
                expanded = self._expand_chain(entry, depth + 1)
                if isinstance(expanded, list):
                    return expanded  # pruned singleton: caller verifies
                node.table[prefix[depth]] = expanded
                node = expanded
                continue
            if entry.depth >= len(prefix):
                return entry
            node = entry

    def _iter_subtree(self, node: _Node) -> Iterator[tuple]:
        stack: list[_Node | list[tuple]] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, list):
                yield from current
            else:
                stack.extend(current.table.values())

    def _subtree_size(self, node: _Node) -> int:
        total = 0
        stack: list[_Node | list[tuple]] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, list):
                total += len(current)
            else:
                stack.extend(current.table.values())
        return total

    def __iter__(self) -> Iterator[tuple]:
        return self._iter_subtree(self._root)

    def iter_next_values(self, prefix: tuple) -> Iterator:
        """Distinct child values; triggers the same lazy expansion as probes."""
        prefix = self._check_prefix(tuple(prefix))
        position = len(prefix)
        if position >= self.arity:
            yield from super().iter_next_values(prefix)
            return
        if position == 0:
            yield from self._root.table.keys()
            return
        entry = self._lookup_entry(prefix)
        if entry is None:
            return
        if isinstance(entry, list):
            seen = set()
            for row in entry:
                if row[:position] == prefix and row[position] not in seen:
                    seen.add(row[position])
                    yield row[position]
            return
        if entry.depth == position:
            yield from entry.table.keys()
            return
        # expanded levels skipped past `position` cannot happen: expansion
        # proceeds one level at a time along probed prefixes
        yield from super().iter_next_values(prefix)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cursor(self) -> "HashTrieCursor":
        """Native cursor; descents trigger the same lazy expansion as probes."""
        return HashTrieCursor(self)

    def batch_cursor(self) -> "HashTrieBatchCursor":
        """Native batch kernel over the lazily-expanded trie."""
        return HashTrieBatchCursor(self)

    def expanded_levels(self) -> int:
        """Deepest expanded level (0 = only the eager first level exists)."""
        deepest = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            deepest = max(deepest, node.depth)
            for entry in node.table.values():
                if isinstance(entry, _Node):
                    stack.append(entry)
        return deepest

    def memory_usage(self) -> int:
        """Design footprint: per-level tables plus chained tuples."""
        total = 0
        stack: list[_Node | list[tuple]] = [self._root]
        while stack:
            current = stack.pop()
            if isinstance(current, list):
                total += len(current) * 8 * self.arity
                continue
            total += 48 + len(current.table) * (8 + 8)
            stack.extend(current.table.values())
        return total


class HashTrieCursor(PrefixCursor):
    """Descent cursor over the lazily-expanded hash trie.

    Frames are either expanded ``_Node`` tables or (post-pruning) raw
    chains.  Descending into an unexpanded multi-tuple chain expands it
    first — exactly the probe-time redistribution work the Fig 15
    experiment charges to Umbra's design.  Chain frames are filtered
    against the bound path, so descents are exact at every depth.
    """

    __slots__ = ("_index", "_frames", "_path")

    def __init__(self, index: HashTrie):
        self._index = index
        self._frames: list = [index._root]
        self._path: list = []

    @property
    def depth(self) -> int:
        return len(self._path)

    def try_descend(self, value) -> bool:
        index = self._index
        depth = self.depth
        if depth >= index.arity:
            raise SchemaError("cursor already at full depth")
        frame = self._frames[-1]
        if isinstance(frame, list):
            # inside a pruned/unexpanded chain: filter tuples directly
            candidate = [row for row in frame if row[depth] == value]
            if not candidate:
                return False
            self._frames.append(candidate)
            self._path.append(value)
            return True
        entry = frame.table.get(value)
        if entry is None:
            return False
        if isinstance(entry, list) and depth + 1 < index.arity:
            expanded = index._expand_chain(entry, depth + 1)
            if not isinstance(expanded, list):
                frame.table[value] = expanded
                entry = expanded
        self._frames.append(entry)
        self._path.append(value)
        return True

    def ascend(self) -> None:
        if not self._path:
            raise SchemaError("cursor.ascend above the root")
        self._frames.pop()
        self._path.pop()

    def child_values(self):
        index = self._index
        depth = self.depth
        if depth >= index.arity:
            raise SchemaError("cursor at full depth has no children")
        frame = self._frames[-1]
        if isinstance(frame, list):
            seen = set()
            for row in frame:
                value = row[depth]
                if value not in seen:
                    seen.add(value)
                    yield value
            return
        yield from list(frame.table.keys())

    def count(self) -> int:
        """Size of the *current-level* hash table (Freitag et al.'s rule).

        Umbra's multiway join iterates "the smallest hash table at the
        current level"; unlike Sonic's prefix counters this is a width,
        not a subtree size — exactly the information gap the paper's
        §5.15 comparison exploits.
        """
        frame = self._frames[-1]
        if isinstance(frame, list):
            return len(frame)
        return len(frame.table)


class HashTrieBatchCursor(CursorBatchCursor):
    """Batched probing over the hash trie.

    Wraps a :class:`HashTrieCursor`, so descents trigger exactly the same
    lazy chain expansion (and pay the same redistribution cost, keeping
    the Fig 15 comparison honest); each visited node's table keys — or
    path-filtered chain values — are frozen into one sorted array and
    candidate vectors resolve against it with a single vectorized binary
    search instead of one dict probe per candidate.  Exact at every depth
    (chain frames are filtered against the bound path).
    """

    __slots__ = ()

    def __init__(self, index: HashTrie):
        super().__init__(HashTrieCursor(index))
