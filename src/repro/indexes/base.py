"""Common interface for every index structure in the study.

The paper's C++ framework (§4.1) accepts "any index … as long as it
provides the required operations".  The required operations (§3.1) are:

* ``insert`` — add one tuple,
* *point lookup* — is this exact tuple present?
* *prefix lookup* — enumerate all stored tuples matching a key prefix,
* *count prefix* — how many stored tuples match a key prefix?

:class:`TupleIndex` is the Python rendering of that contract.  Structures
that cannot answer prefix queries (plain hash sets, Robin Hood maps — the
point-lookup-only group in §5.4) raise
:class:`~repro.errors.UnsupportedOperationError` from the prefix methods and
advertise it via :attr:`TupleIndex.SUPPORTS_PREFIX`, exactly mirroring the
paper's exclusion of those structures from the prefix experiments.

Indexes are keyed by *position*: an index of arity ``k`` stores ``k``-ary
tuples whose components are already permuted into the query's total order
(see :meth:`repro.storage.relation.Relation.reordered`).  Mapping attribute
names to positions is the adapter's job, not the index's.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator, Sequence
from typing import ClassVar

import numpy as np

from repro.errors import SchemaError, UnsupportedOperationError
from repro.obs.metrics import NULL_METRICS

#: shared empty candidate array (int64, the common key dtype)
EMPTY_VALUES: np.ndarray = np.empty(0, dtype=np.int64)


def value_array(values: "Sequence | np.ndarray") -> np.ndarray:
    """A 1-d array over join values: int64 when possible, else object.

    Join keys are ints in every generator in this repository and strings in
    the var-len experiments; a column never mixes the two.  ``np.asarray``
    would silently stringify ints if it ever saw a mix, so any non-numeric
    result that is not genuinely string data falls back to an object array
    (python comparison semantics, exactly what sorted containers use).
    """
    if isinstance(values, np.ndarray):
        return values
    seq = values if isinstance(values, (list, tuple)) else list(values)
    if not seq:
        return EMPTY_VALUES
    arr = np.asarray(seq)
    if arr.ndim != 1 or (arr.dtype.kind not in "iufb" and not isinstance(seq[0], str)):
        arr = np.empty(len(seq), dtype=object)
        arr[:] = seq
    return arr


def bulk_columns(arity: int, columns: "Sequence") -> list[np.ndarray]:
    """Validate a columnar build input: ``arity`` equal-length 1-d arrays.

    Each column is normalized through :func:`value_array` (int64 / string /
    object, never a silently-stringified mix), so every ``build_bulk``
    implementation sees the same canonical dtypes the probe kernels do.
    """
    arrays = [value_array(column) for column in columns]
    if len(arrays) != arity:
        raise SchemaError(
            f"columnar build got {len(arrays)} columns for arity {arity}"
        )
    if len({len(array) for array in arrays}) > 1:
        raise SchemaError(
            "columnar build got ragged columns: lengths "
            f"{[len(array) for array in arrays]}"
        )
    return arrays


#: dtype kinds with a total order consistent with python comparisons
_SORTABLE_KINDS = frozenset("iufbU")


def sorted_unique_rows(arrays: "Sequence[np.ndarray]") -> "list[tuple] | None":
    """Lexicographically sorted, duplicate-free row tuples from columns.

    The vectorized path (one ``np.lexsort`` plus a shifted-comparison
    dedupe) runs whenever every column's dtype admits a total order that
    matches python's; otherwise the rows are python-sorted, and ``None``
    is returned when even that fails (cross-type values with no ordering)
    so callers can keep the per-row insert path, which never compares
    values across tuples.
    """
    if not arrays or len(arrays[0]) == 0:
        return []
    if all(array.dtype.kind in _SORTABLE_KINDS for array in arrays):
        # lexsort's *last* key is primary, so feed the columns reversed
        order = np.lexsort(tuple(arrays[::-1]))
        cols = [array[order] for array in arrays]
        distinct = np.zeros(len(order) - 1, dtype=bool)
        for col in cols:
            distinct |= col[1:] != col[:-1]
        if not distinct.all():
            keep = np.empty(len(order), dtype=bool)
            keep[0] = True
            keep[1:] = distinct
            cols = [col[keep] for col in cols]
        return list(zip(*(col.tolist() for col in cols)))
    try:
        return sorted(set(zip(*(column.tolist() for column in arrays))))
    except TypeError:
        return None


def sorted_value_array(values: "Iterable") -> np.ndarray:
    """``values`` (assumed distinct) as a sorted array.

    The candidate-array constructor shared by the batch kernels; callers
    are responsible for deduplication (child walks never yield duplicates).
    """
    if isinstance(values, np.ndarray):
        return np.sort(values)
    return value_array(sorted(values))


def membership_mask(sorted_children: np.ndarray,
                    values: np.ndarray) -> np.ndarray:
    """Boolean mask: which of ``values`` occur in ``sorted_children``.

    One vectorized binary search per call — the batched rendering of the
    Generic Join's per-candidate descend probes.
    """
    if sorted_children.size == 0 or values.size == 0:
        return np.zeros(values.size, dtype=bool)
    if sorted_children.dtype.kind != values.dtype.kind:
        # e.g. int64 children probed with an object-dtype vector: binary
        # search would need an ordering across the mixed types, so test
        # membership under python hashing semantics instead
        children = set(sorted_children.tolist())
        return np.fromiter((value in children for value in values.tolist()),
                           dtype=bool, count=values.size)
    positions = sorted_children.searchsorted(values)
    np.minimum(positions, sorted_children.size - 1, out=positions)
    return sorted_children[positions] == values


class TupleIndex(abc.ABC):
    """Abstract base for all tuple indexes in :mod:`repro.indexes`.

    Subclasses set two class attributes consumed by the benchmark harness
    and the join executor:

    * :attr:`NAME` — the registry key (``"sonic"``, ``"btree"``, …).
    * :attr:`SUPPORTS_PREFIX` — whether prefix lookup / count prefix work.
    """

    NAME: ClassVar[str] = "abstract"
    SUPPORTS_PREFIX: ClassVar[bool] = True
    #: does :meth:`batch_cursor` return a *native* vectorized kernel?
    #: Every prefix-capable index still gets a (per-value) fallback batch
    #: cursor; this flag is what ``engine="auto"`` keys on.
    SUPPORTS_BATCH: ClassVar[bool] = False
    #: does :meth:`build_bulk` take a vectorized columnar fast path?
    #: Every index accepts ``build_bulk`` (the default re-rows the columns
    #: and inserts per tuple); adapters consult this flag to decide whether
    #: handing whole columns over is worth materializing them.
    SUPPORTS_BULK_BUILD: ClassVar[bool] = False

    def __init__(self, arity: int):
        if arity < 1:
            raise SchemaError(f"index arity must be >= 1, got {arity}")
        self.arity = arity
        self._size = 0

    # ------------------------------------------------------------------
    # Required operations (§3.1)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def insert(self, row: tuple) -> None:
        """Insert one tuple of exactly :attr:`arity` components.

        Duplicate inserts are idempotent for membership but implementations
        may count them in prefix counters if the source relation is a bag;
        all generators in this repository produce sets, and the join
        algorithms assume set semantics.
        """

    @abc.abstractmethod
    def contains(self, row: tuple) -> bool:
        """Point lookup: is the exact tuple present?"""

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        """Enumerate stored tuples whose first ``len(prefix)`` components equal ``prefix``.

        The order of enumeration is implementation-defined.  ``prefix`` may
        have any length from 0 (enumerate everything) to :attr:`arity`
        (point lookup returning zero or one tuple).
        """
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support prefix lookups"
        )

    def count_prefix(self, prefix: tuple) -> int:
        """Number of stored tuples matching ``prefix`` (see :meth:`prefix_lookup`)."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support prefix counting"
        )

    def has_prefix(self, prefix: tuple) -> bool:
        """Does at least one stored tuple match ``prefix``?

        The membership test at the heart of the Generic Join's candidate
        elimination (Alg. 1 line 15).  The default asks :meth:`prefix_lookup`
        for a first match; structures with a cheaper existence probe
        override it.
        """
        for _ in self.prefix_lookup(prefix):
            return True
        return False

    def iter_next_values(self, prefix: tuple) -> Iterator:
        """Distinct values of component ``len(prefix)`` among matching tuples.

        The Generic Join's per-attribute candidate enumeration: given the
        bound prefix, enumerate the possible next attribute values.  The
        default projects and deduplicates :meth:`prefix_lookup`; trie-like
        structures override with a direct child walk.
        """
        position = len(prefix)
        if position >= self.arity:
            raise SchemaError(
                f"no component after a length-{position} prefix in an "
                f"arity-{self.arity} index"
            )
        seen = set()
        for row in self.prefix_lookup(prefix):
            value = row[position]
            if value not in seen:
                seen.add(value)
                yield value

    # ------------------------------------------------------------------
    # Bulk operations and bookkeeping
    # ------------------------------------------------------------------
    def build(self, rows: Iterable[tuple]) -> None:
        """Build the index by inserting every row (the paper's build phase)."""
        for row in rows:
            self.insert(row)

    def build_bulk(self, columns: "Sequence") -> None:
        """Build from per-component columns (the columnar build contract).

        ``columns`` holds one equal-length sequence/array per component,
        already permuted into this index's attribute order.  Set semantics
        match :meth:`build`: duplicates collapse, values round-trip through
        :func:`value_array` canonicalization.  The default re-rows the
        columns and inserts per tuple; indexes advertising
        :attr:`SUPPORTS_BULK_BUILD` override with a vectorized path.
        """
        self._insert_columns(bulk_columns(self.arity, columns))

    def _insert_columns(self, arrays: "Sequence[np.ndarray]") -> None:
        """Row-wise fallback shared by every ``build_bulk`` implementation."""
        if not arrays or len(arrays[0]) == 0:
            return
        for row in zip(*(column.tolist() for column in arrays)):
            self.insert(row)

    def __len__(self) -> int:
        """Number of distinct tuples stored."""
        return self._size

    def __contains__(self, row: object) -> bool:
        return isinstance(row, tuple) and self.contains(row)

    def memory_usage(self) -> int:
        """Estimated resident bytes of the structure (Fig 18).

        Implementations report the bytes their *design* would occupy in a
        native implementation (array slots, node headers, pointers at 8 B),
        not Python object overhead — the quantity the paper plots.
        """
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not report memory usage"
        )

    # ------------------------------------------------------------------
    # Validation helpers shared by subclasses
    # ------------------------------------------------------------------
    def _check_row(self, row: tuple) -> tuple:
        if len(row) != self.arity:
            raise SchemaError(
                f"{type(self).__name__}(arity={self.arity}) got tuple of "
                f"length {len(row)}: {row!r}"
            )
        return row

    def _check_prefix(self, prefix: tuple) -> tuple:
        if len(prefix) > self.arity:
            raise SchemaError(
                f"prefix of length {len(prefix)} longer than index arity {self.arity}"
            )
        return prefix


    def cursor(self) -> "PrefixCursor":
        """A stateful descent cursor over the index's prefix hierarchy.

        This is the probe interface the Generic Join actually drives: it
        binds one attribute at a time and needs O(1)-ish *incremental*
        steps (descend into a child, back up) rather than root-to-leaf
        re-probes per binding — the cost model behind the paper's Alg. 3.
        The default wraps the index's prefix operations; hierarchical
        structures override with a native cursor.
        """
        if not self.SUPPORTS_PREFIX:
            raise UnsupportedOperationError(
                f"{type(self).__name__} does not support prefix descent"
            )
        return FallbackCursor(self)

    def batch_cursor(self) -> "BatchCursor":
        """A vectorized probe cursor for the batch Generic Join.

        Indexes with native batch kernels (``SUPPORTS_BATCH = True``)
        override this; the default wraps any prefix-capable index in a
        per-value shim so every registered structure joins under
        ``engine="batch"`` unchanged, just without the constant-factor win.
        """
        if not self.SUPPORTS_PREFIX:
            raise UnsupportedOperationError(
                f"{type(self).__name__} does not support prefix descent"
            )
        return FallbackBatchCursor(self)


class PrefixCursor(abc.ABC):
    """Incremental descent through an index's prefix hierarchy.

    A cursor sits at a *node*: the set of stored tuples matching the
    component values bound so far (the root matches everything).  The
    Generic Join drives exactly four operations:

    * :meth:`try_descend` — bind the next component to a value; returns
      whether the subtree is (apparently) non-empty.  Implementations may
      report rare false positives at inner depths (Sonic's patch
      ambiguity, §3.3); they must be exact at the final depth, where the
      stored payload is available for verification.
    * :meth:`ascend` — undo the most recent successful descend.
    * :meth:`child_values` — the distinct candidate values for the next
      component (may include the same rare false positives; never
      duplicates).
    * :meth:`count` — (possibly approximate) number of tuples below the
      current node; advisory, used for seed selection only.
    """

    __slots__ = ()

    @abc.abstractmethod
    def try_descend(self, value) -> bool:
        """Bind the next component to ``value``; True if non-empty."""

    @abc.abstractmethod
    def ascend(self) -> None:
        """Pop the most recent binding."""

    @abc.abstractmethod
    def child_values(self):
        """Iterator over distinct next-component candidates."""

    @abc.abstractmethod
    def count(self) -> int:
        """Advisory size of the current subtree."""

    @property
    @abc.abstractmethod
    def depth(self) -> int:
        """Number of components currently bound."""


class FallbackCursor(PrefixCursor):
    """Cursor over any prefix-capable index's whole-prefix operations.

    Correct for every :class:`TupleIndex`; each step re-probes from the
    root (O(depth) per step), which is what structures without a native
    cursor can offer.
    """

    __slots__ = ("_index", "_prefix")

    def __init__(self, index: TupleIndex):
        self._index = index
        self._prefix: list = []

    def try_descend(self, value) -> bool:
        self._prefix.append(value)
        if self._index.has_prefix(tuple(self._prefix)):
            return True
        self._prefix.pop()
        return False

    def ascend(self) -> None:
        self._prefix.pop()

    def child_values(self):
        return self._index.iter_next_values(tuple(self._prefix))

    def count(self) -> int:
        return self._index.count_prefix(tuple(self._prefix))

    @property
    def depth(self) -> int:
        return len(self._prefix)


class BatchCursor(abc.ABC):
    """Vectorized probe interface for the batch Generic Join.

    Where :class:`PrefixCursor` answers one candidate at a time, a batch
    cursor answers *vectors* of candidates per call — the Free-Join-style
    batch-at-a-time evaluation that removes interpreter dispatch from the
    intersection inner loop.  Methods are prefix-addressed (the full bound
    prefix is passed every call) so the interface is stateless; concrete
    cursors keep an internal descent stack and sync to the given prefix,
    which costs O(changed components) under the driver's depth-first
    access pattern.

    Exactness contract (mirrors :class:`PrefixCursor`): at non-final
    depths :meth:`candidates` and :meth:`probe_many` may report rare false
    positives (Sonic's patch ambiguity, §3.3); at the final depth —
    ``len(prefix) == arity - 1`` — both are exact, verified against stored
    payloads, so join results are always exact.

    * :meth:`candidates` — sorted, duplicate-free array of next-component
      values under ``prefix``.
    * :meth:`probe_many` — boolean mask over ``values``: which extend
      ``prefix`` into a (apparently) non-empty subtree.
    * :meth:`count` — advisory subtree size, for seed selection only.

    **Observability.**  Concrete cursors carry a ``_metrics`` reference
    (the shared :data:`~repro.obs.metrics.NULL_METRICS` by default); a
    profiled run points it at its live registry via
    :meth:`attach_metrics`, after which calls record memo hits/misses and
    array sizes — always behind an ``if self._metrics.enabled`` guard, so
    the un-profiled path pays one attribute load and branch per call.
    """

    __slots__ = ()

    def attach_metrics(self, metrics) -> None:
        """Route this cursor's counters into ``metrics`` (a profiled
        run's :class:`~repro.obs.metrics.Metrics` registry)."""
        self._metrics = metrics

    @abc.abstractmethod
    def candidates(self, prefix: tuple) -> np.ndarray:
        """Sorted distinct next-component values below ``prefix``."""

    @abc.abstractmethod
    def probe_many(self, prefix: tuple, values: np.ndarray) -> np.ndarray:
        """Boolean mask aligned with ``values``: non-empty extensions."""

    @abc.abstractmethod
    def count(self, prefix: tuple) -> int:
        """Advisory number of stored tuples below ``prefix``."""


class SyncedBatchCursor(BatchCursor):
    """Shared descent-stack plumbing for native batch kernels.

    Subclasses provide three node-level hooks (``_descend_frame``,
    ``_children_array``, ``_frame_count``); this base maintains the path
    stack, syncs it to each call's prefix, and **memoizes one sorted
    children array (and one advisory count) per distinct prefix** for the
    cursor's lifetime — Free Join's lazily-built column-oriented trie
    (COLT): only the nodes the join actually visits are ever materialized,
    but a node revisited under different outer bindings (E2's subtree
    under a popular ``b``, reached once per ``(a, b)`` edge) answers from
    the memo without re-walking the index.  Memo size is bounded by the
    number of distinct visited prefixes, at most the index's node count;
    indexes are immutable during a join, so entries never invalidate.

    A frame of ``None`` marks a missing node (descent failed): candidates
    are empty, probes all-False, count 0.
    """

    __slots__ = ("_path", "_frames", "_memo", "_counts", "_metrics")

    def __init__(self, root_frame):
        self._path: list = []
        self._frames: list = [root_frame]
        self._memo: dict = {}
        self._counts: dict = {}
        self._metrics = NULL_METRICS

    # -- subclass hooks ------------------------------------------------
    @abc.abstractmethod
    def _descend_frame(self, frame, depth: int, value):
        """Child frame of ``frame`` under ``value`` at ``depth``; None if absent."""

    @abc.abstractmethod
    def _children_array(self, frame, depth: int) -> np.ndarray:
        """Sorted distinct next-component values of the node ``frame``."""

    @abc.abstractmethod
    def _frame_count(self, frame, depth: int) -> int:
        """Advisory subtree size of the node ``frame``."""

    # -- BatchCursor interface -----------------------------------------
    def _sync(self, prefix: tuple):
        """Re-anchor the descent stack at ``prefix``; returns the top frame."""
        path = self._path
        frames = self._frames
        common = 0
        for bound, wanted in zip(path, prefix):
            if bound != wanted:
                break
            common += 1
        while len(path) > common:
            path.pop()
            self._pop_frame(frames.pop())
        for depth in range(common, len(prefix)):
            value = prefix[depth]
            top = frames[-1]
            frame = None if top is None else self._descend_frame(top, depth, value)
            path.append(value)
            frames.append(frame)
        return frames[-1]

    def _pop_frame(self, frame) -> None:
        """Hook: a frame (possibly None) left the stack.  Default no-op."""

    def _materialize(self, prefix: tuple) -> np.ndarray:
        """Memo miss: sync to ``prefix``, walk the node's children once."""
        frame = self._sync(prefix)
        if frame is None:
            array = EMPTY_VALUES
        else:
            array = self._children_array(frame, len(self._path))
        self._memo[prefix] = array
        return array

    def candidates(self, prefix: tuple) -> np.ndarray:
        array = self._memo.get(prefix)
        metrics = self._metrics
        if array is None:
            array = self._materialize(prefix)
            if metrics.enabled:
                metrics.inc("batch.candidates")
                metrics.inc("batch.memo_miss")
                metrics.observe("batch.candidates_size", array.size)
        elif metrics.enabled:
            metrics.inc("batch.candidates")
            metrics.inc("batch.memo_hit")
            metrics.observe("batch.candidates_size", array.size)
        return array

    def probe_many(self, prefix: tuple, values: np.ndarray) -> np.ndarray:
        array = self._memo.get(prefix)
        if array is None:
            array = self._materialize(prefix)
        metrics = self._metrics
        if metrics.enabled:
            metrics.inc("batch.probe_many")
            metrics.observe("batch.probe_many_size", values.size)
        return membership_mask(array, values)

    def count(self, prefix: tuple) -> int:
        cached = self._counts.get(prefix)
        if cached is None:
            frame = self._sync(prefix)
            cached = 0 if frame is None else self._frame_count(frame, len(self._path))
            self._counts[prefix] = cached
        return cached


#: frame token marking a successful native-cursor descent
_DESCENDED = object()


class CursorBatchCursor(SyncedBatchCursor):
    """Batch kernel over an index's *native* :class:`PrefixCursor`.

    Keeps a wrapped incremental cursor in lockstep with the descent stack
    (one ``try_descend``/``ascend`` per changed component — O(1)-ish, the
    Alg. 3 cost model), materializes each visited node's distinct children
    into one sorted array exactly once, and answers ``probe_many`` with a
    single vectorized binary search against it.  A node revisited by many
    sibling bindings — the common case at the upper levels of a descent —
    never re-walks its children.

    Exactness is inherited from the wrapped cursor: its ``child_values``
    may surface inner-depth false positives but is payload-exact at the
    final depth, so the batch contract holds.
    """

    __slots__ = ("_cursor",)

    _ROOT = object()

    def __init__(self, cursor: PrefixCursor):
        self._cursor = cursor
        super().__init__(self._ROOT)

    def _descend_frame(self, frame, depth: int, value):
        return _DESCENDED if self._cursor.try_descend(value) else None

    def _pop_frame(self, frame) -> None:
        if frame is _DESCENDED:
            self._cursor.ascend()

    def _children_array(self, frame, depth: int) -> np.ndarray:
        return sorted_value_array(list(self._cursor.child_values()))

    def _frame_count(self, frame, depth: int) -> int:
        return self._cursor.count()


class FallbackBatchCursor(BatchCursor):
    """Batch shim over any prefix-capable index.

    Correct for every :class:`TupleIndex` whose prefix operations are
    exact (all registered structures except Sonic, which ships a native
    kernel).  Each visited node's distinct children are walked once
    through ``iter_next_values`` and memoized as a sorted array (the
    index is immutable during a join); ``probe_many`` then answers with
    one vectorized binary search against that array instead of a
    per-value ``has_prefix`` loop that re-probed the index from the
    root for every candidate.
    """

    __slots__ = ("_index", "_memo", "_metrics")

    def __init__(self, index: TupleIndex):
        self._index = index
        self._memo: dict = {}
        self._metrics = NULL_METRICS

    def candidates(self, prefix: tuple) -> np.ndarray:
        array = self._memo.get(prefix)
        metrics = self._metrics
        if array is None:
            array = sorted_value_array(self._index.iter_next_values(prefix))
            self._memo[prefix] = array
            if metrics.enabled:
                metrics.inc("batch.candidates")
                metrics.inc("batch.memo_miss")
                metrics.observe("batch.candidates_size", array.size)
        elif metrics.enabled:
            metrics.inc("batch.candidates")
            metrics.inc("batch.memo_hit")
            metrics.observe("batch.candidates_size", array.size)
        return array

    def probe_many(self, prefix: tuple, values: np.ndarray) -> np.ndarray:
        array = self._memo.get(prefix)
        if array is None:
            array = sorted_value_array(self._index.iter_next_values(prefix))
            self._memo[prefix] = array
        metrics = self._metrics
        if metrics.enabled:
            metrics.inc("batch.probe_many")
            metrics.observe("batch.probe_many_size", values.size)
        return membership_mask(array, values)

    def count(self, prefix: tuple) -> int:
        return self._index.count_prefix(prefix)


class PointIndex(TupleIndex):
    """Convenience base for point-lookup-only structures (hash set group)."""

    SUPPORTS_PREFIX: ClassVar[bool] = False
