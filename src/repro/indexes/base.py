"""Common interface for every index structure in the study.

The paper's C++ framework (§4.1) accepts "any index … as long as it
provides the required operations".  The required operations (§3.1) are:

* ``insert`` — add one tuple,
* *point lookup* — is this exact tuple present?
* *prefix lookup* — enumerate all stored tuples matching a key prefix,
* *count prefix* — how many stored tuples match a key prefix?

:class:`TupleIndex` is the Python rendering of that contract.  Structures
that cannot answer prefix queries (plain hash sets, Robin Hood maps — the
point-lookup-only group in §5.4) raise
:class:`~repro.errors.UnsupportedOperationError` from the prefix methods and
advertise it via :attr:`TupleIndex.SUPPORTS_PREFIX`, exactly mirroring the
paper's exclusion of those structures from the prefix experiments.

Indexes are keyed by *position*: an index of arity ``k`` stores ``k``-ary
tuples whose components are already permuted into the query's total order
(see :meth:`repro.storage.relation.Relation.reordered`).  Mapping attribute
names to positions is the adapter's job, not the index's.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator
from typing import ClassVar

from repro.errors import SchemaError, UnsupportedOperationError


class TupleIndex(abc.ABC):
    """Abstract base for all tuple indexes in :mod:`repro.indexes`.

    Subclasses set two class attributes consumed by the benchmark harness
    and the join executor:

    * :attr:`NAME` — the registry key (``"sonic"``, ``"btree"``, …).
    * :attr:`SUPPORTS_PREFIX` — whether prefix lookup / count prefix work.
    """

    NAME: ClassVar[str] = "abstract"
    SUPPORTS_PREFIX: ClassVar[bool] = True

    def __init__(self, arity: int):
        if arity < 1:
            raise SchemaError(f"index arity must be >= 1, got {arity}")
        self.arity = arity
        self._size = 0

    # ------------------------------------------------------------------
    # Required operations (§3.1)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def insert(self, row: tuple) -> None:
        """Insert one tuple of exactly :attr:`arity` components.

        Duplicate inserts are idempotent for membership but implementations
        may count them in prefix counters if the source relation is a bag;
        all generators in this repository produce sets, and the join
        algorithms assume set semantics.
        """

    @abc.abstractmethod
    def contains(self, row: tuple) -> bool:
        """Point lookup: is the exact tuple present?"""

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        """Enumerate stored tuples whose first ``len(prefix)`` components equal ``prefix``.

        The order of enumeration is implementation-defined.  ``prefix`` may
        have any length from 0 (enumerate everything) to :attr:`arity`
        (point lookup returning zero or one tuple).
        """
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support prefix lookups"
        )

    def count_prefix(self, prefix: tuple) -> int:
        """Number of stored tuples matching ``prefix`` (see :meth:`prefix_lookup`)."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support prefix counting"
        )

    def has_prefix(self, prefix: tuple) -> bool:
        """Does at least one stored tuple match ``prefix``?

        The membership test at the heart of the Generic Join's candidate
        elimination (Alg. 1 line 15).  The default asks :meth:`prefix_lookup`
        for a first match; structures with a cheaper existence probe
        override it.
        """
        for _ in self.prefix_lookup(prefix):
            return True
        return False

    def iter_next_values(self, prefix: tuple) -> Iterator:
        """Distinct values of component ``len(prefix)`` among matching tuples.

        The Generic Join's per-attribute candidate enumeration: given the
        bound prefix, enumerate the possible next attribute values.  The
        default projects and deduplicates :meth:`prefix_lookup`; trie-like
        structures override with a direct child walk.
        """
        position = len(prefix)
        if position >= self.arity:
            raise SchemaError(
                f"no component after a length-{position} prefix in an "
                f"arity-{self.arity} index"
            )
        seen = set()
        for row in self.prefix_lookup(prefix):
            value = row[position]
            if value not in seen:
                seen.add(value)
                yield value

    # ------------------------------------------------------------------
    # Bulk operations and bookkeeping
    # ------------------------------------------------------------------
    def build(self, rows: Iterable[tuple]) -> None:
        """Build the index by inserting every row (the paper's build phase)."""
        for row in rows:
            self.insert(row)

    def __len__(self) -> int:
        """Number of distinct tuples stored."""
        return self._size

    def __contains__(self, row: object) -> bool:
        return isinstance(row, tuple) and self.contains(row)

    def memory_usage(self) -> int:
        """Estimated resident bytes of the structure (Fig 18).

        Implementations report the bytes their *design* would occupy in a
        native implementation (array slots, node headers, pointers at 8 B),
        not Python object overhead — the quantity the paper plots.
        """
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not report memory usage"
        )

    # ------------------------------------------------------------------
    # Validation helpers shared by subclasses
    # ------------------------------------------------------------------
    def _check_row(self, row: tuple) -> tuple:
        if len(row) != self.arity:
            raise SchemaError(
                f"{type(self).__name__}(arity={self.arity}) got tuple of "
                f"length {len(row)}: {row!r}"
            )
        return row

    def _check_prefix(self, prefix: tuple) -> tuple:
        if len(prefix) > self.arity:
            raise SchemaError(
                f"prefix of length {len(prefix)} longer than index arity {self.arity}"
            )
        return prefix


    def cursor(self) -> "PrefixCursor":
        """A stateful descent cursor over the index's prefix hierarchy.

        This is the probe interface the Generic Join actually drives: it
        binds one attribute at a time and needs O(1)-ish *incremental*
        steps (descend into a child, back up) rather than root-to-leaf
        re-probes per binding — the cost model behind the paper's Alg. 3.
        The default wraps the index's prefix operations; hierarchical
        structures override with a native cursor.
        """
        if not self.SUPPORTS_PREFIX:
            raise UnsupportedOperationError(
                f"{type(self).__name__} does not support prefix descent"
            )
        return FallbackCursor(self)


class PrefixCursor(abc.ABC):
    """Incremental descent through an index's prefix hierarchy.

    A cursor sits at a *node*: the set of stored tuples matching the
    component values bound so far (the root matches everything).  The
    Generic Join drives exactly four operations:

    * :meth:`try_descend` — bind the next component to a value; returns
      whether the subtree is (apparently) non-empty.  Implementations may
      report rare false positives at inner depths (Sonic's patch
      ambiguity, §3.3); they must be exact at the final depth, where the
      stored payload is available for verification.
    * :meth:`ascend` — undo the most recent successful descend.
    * :meth:`child_values` — the distinct candidate values for the next
      component (may include the same rare false positives; never
      duplicates).
    * :meth:`count` — (possibly approximate) number of tuples below the
      current node; advisory, used for seed selection only.
    """

    __slots__ = ()

    @abc.abstractmethod
    def try_descend(self, value) -> bool:
        """Bind the next component to ``value``; True if non-empty."""

    @abc.abstractmethod
    def ascend(self) -> None:
        """Pop the most recent binding."""

    @abc.abstractmethod
    def child_values(self):
        """Iterator over distinct next-component candidates."""

    @abc.abstractmethod
    def count(self) -> int:
        """Advisory size of the current subtree."""

    @property
    @abc.abstractmethod
    def depth(self) -> int:
        """Number of components currently bound."""


class FallbackCursor(PrefixCursor):
    """Cursor over any prefix-capable index's whole-prefix operations.

    Correct for every :class:`TupleIndex`; each step re-probes from the
    root (O(depth) per step), which is what structures without a native
    cursor can offer.
    """

    __slots__ = ("_index", "_prefix")

    def __init__(self, index: TupleIndex):
        self._index = index
        self._prefix: list = []

    def try_descend(self, value) -> bool:
        self._prefix.append(value)
        if self._index.has_prefix(tuple(self._prefix)):
            return True
        self._prefix.pop()
        return False

    def ascend(self) -> None:
        self._prefix.pop()

    def child_values(self):
        return self._index.iter_next_values(tuple(self._prefix))

    def count(self) -> int:
        return self._index.count_prefix(tuple(self._prefix))

    @property
    def depth(self) -> int:
        return len(self._prefix)


class PointIndex(TupleIndex):
    """Convenience base for point-lookup-only structures (hash set group)."""

    SUPPORTS_PREFIX: ClassVar[bool] = False
