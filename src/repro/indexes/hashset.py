"""SwissTable-style open-addressing hash set (the paper's "Abseil Hash Set").

The paper uses Abseil's hash set as the fastest point-lookup baseline and
as the per-join-key hash table of the binary-join baseline (§1, §5.4).
Abseil's design — a "SwissTable" — keeps one metadata byte per slot: the
top bit distinguishes full from empty/deleted, and the low 7 bits cache a
fragment of the hash so most probe comparisons never touch the key array.
Probing proceeds group-by-group (16 slots per group) with triangular
(quadratic) group stepping.

This is a faithful scalar port of that design: we keep the metadata array,
the 7-bit hash fragments (``H2``), group probing and the power-of-two
growth policy.  What we cannot port is the SSE2 16-way metadata compare;
the scalar loop over a group preserves the *algorithmic* behaviour (probe
lengths, load factors) that the comparative study measures.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import ClassVar

from repro.core.hashing import hash_tuple
from repro.errors import ConfigurationError
from repro.indexes.base import PointIndex

_EMPTY = 0x80  # metadata byte for a never-used slot
_DELETED = 0x81  # metadata byte for a tombstone
_GROUP = 16  # slots probed per step, as in Abseil
_MAX_LOAD = 0.875  # Abseil's 7/8 load factor


class SwissTableSet(PointIndex):
    """Flat hash set of tuples with SwissTable metadata probing."""

    NAME: ClassVar[str] = "hashset"

    def __init__(self, arity: int, initial_capacity: int = 16):
        super().__init__(arity)
        if initial_capacity < _GROUP:
            initial_capacity = _GROUP
        capacity = 1
        while capacity < initial_capacity:
            capacity <<= 1
        self._capacity = capacity
        self._metadata = bytearray([_EMPTY] * capacity)
        self._slots: list[tuple | None] = [None] * capacity
        self._tombstones = 0

    # ------------------------------------------------------------------
    # Hashing helpers: H1 picks the starting group, H2 is the 7-bit tag.
    # ------------------------------------------------------------------
    @staticmethod
    def _split_hash(row: tuple) -> tuple[int, int]:
        full = hash_tuple(row)
        return full >> 7, full & 0x7F

    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        if (self._size + self._tombstones + 1) > self._capacity * _MAX_LOAD:
            self._grow()
        h1, h2 = self._split_hash(row)
        mask = self._capacity - 1
        group = (h1 & mask) // _GROUP
        groups = self._capacity // _GROUP
        first_free = -1
        step = 0
        while True:
            base = group * _GROUP
            for offset in range(_GROUP):
                slot = base + offset
                meta = self._metadata[slot]
                if meta == h2 and self._slots[slot] == row:
                    return  # duplicate insert: set semantics
                if meta == _EMPTY:
                    if first_free < 0:
                        first_free = slot
                    self._occupy(first_free, h2, row)
                    return
                if meta == _DELETED and first_free < 0:
                    first_free = slot
            step += 1
            group = (group + step) % groups  # triangular group probing

    def _occupy(self, slot: int, h2: int, row: tuple) -> None:
        if self._metadata[slot] == _DELETED:
            self._tombstones -= 1
        self._metadata[slot] = h2
        self._slots[slot] = row
        self._size += 1

    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        slot = self._find_slot(row)
        return slot >= 0

    def remove(self, row: tuple) -> bool:
        """Delete ``row`` if present; returns whether a deletion happened."""
        row = self._check_row(row)
        slot = self._find_slot(row)
        if slot < 0:
            return False
        self._metadata[slot] = _DELETED
        self._slots[slot] = None
        self._size -= 1
        self._tombstones += 1
        return True

    def _find_slot(self, row: tuple) -> int:
        h1, h2 = self._split_hash(row)
        mask = self._capacity - 1
        group = (h1 & mask) // _GROUP
        groups = self._capacity // _GROUP
        step = 0
        while step <= groups:
            base = group * _GROUP
            for offset in range(_GROUP):
                slot = base + offset
                meta = self._metadata[slot]
                if meta == h2 and self._slots[slot] == row:
                    return slot
                if meta == _EMPTY:
                    return -1  # an empty slot terminates the probe chain
            step += 1
            group = (group + step) % groups
        return -1

    def _grow(self) -> None:
        old_slots = self._slots
        self._capacity *= 2
        self._metadata = bytearray([_EMPTY] * self._capacity)
        self._slots = [None] * self._capacity
        self._size = 0
        self._tombstones = 0
        for row in old_slots:
            if row is not None:
                self.insert(row)

    def __iter__(self) -> Iterator[tuple]:
        for meta, row in zip(self._metadata, self._slots):
            if meta < 0x80:
                yield row

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def load_factor(self) -> float:
        return self._size / self._capacity

    def memory_usage(self) -> int:
        """Design footprint: 1 metadata byte + 8 B/key-word per slot."""
        return self._capacity * (1 + 8 * self.arity)


def make_swiss_set(arity: int, **kwargs) -> SwissTableSet:
    """Registry-style factory for :class:`SwissTableSet`."""
    if kwargs.pop("unknown", None):
        raise ConfigurationError("unknown option")
    return SwissTableSet(arity, **kwargs)
