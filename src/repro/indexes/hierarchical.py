"""Hierarchical hash map (the paper's "Hierarchical Abseil Hash Map").

The straw-man way to give hash tables prefix-lookup support (§3.1): a hash
table of hash tables.  Level ``i`` maps the ``i``-th tuple component to the
hash table for level ``i+1``; the last level maps the final component to
the stored tuple.  The paper lists its four drawbacks — indirection on
every level, exponential table count, per-table memory overhead, and
multi-level rehashing — and Sonic exists to avoid them.  We reproduce the
structure over the Robin Hood map so the comparison study can measure those
drawbacks directly (table count and per-level indirections are exposed for
tests and the memory figure).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import ClassVar

from repro.errors import SchemaError
from repro.indexes.base import PrefixCursor, TupleIndex
from repro.indexes.robinhood import RobinHoodMap

_TABLE_HEADER_BYTES = 48  # per-table fixed overhead (the paper's 3rd drawback)


class _Node:
    """One hash table in the hierarchy plus a subtree tuple count."""

    __slots__ = ("table", "count")

    def __init__(self):
        self.table = RobinHoodMap()
        self.count = 0


class HierarchicalHashMap(TupleIndex):
    """Hash-table-of-hash-tables index with per-node prefix counters."""

    NAME: ClassVar[str] = "hiermap"

    def __init__(self, arity: int):
        super().__init__(arity)
        self._root = _Node()

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        # First pass: walk to the leaf to detect duplicates without
        # corrupting counters (counts must reflect distinct tuples).
        if self.contains(row):
            return
        node = self._root
        node.count += 1
        for position in range(self.arity - 1):
            child = node.table.get(row[position])
            if child is None:
                child = _Node()
                node.table.put(row[position], child)
            child.count += 1
            node = child
        node.table.put(row[self.arity - 1], row)
        self._size += 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        node = self._root
        for position in range(self.arity - 1):
            node = node.table.get(row[position])
            if node is None:
                return False
        return node.table.get(row[self.arity - 1]) is not None

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        prefix = self._check_prefix(tuple(prefix))
        target = self._descend(prefix)
        if target is None:
            return
        if len(prefix) == self.arity:
            # point lookup through the prefix interface
            yield target
            return
        yield from self._iter_subtree(target, depth=len(prefix))

    def count_prefix(self, prefix: tuple) -> int:
        prefix = self._check_prefix(tuple(prefix))
        target = self._descend(prefix)
        if target is None:
            return 0
        if len(prefix) == self.arity:
            return 1
        return target.count

    def _descend(self, prefix: tuple):
        """Node (or final row) reached by following ``prefix``; None if absent."""
        node = self._root
        for position, value in enumerate(prefix):
            if position == self.arity - 1:
                return node.table.get(value)  # row or None
            node = node.table.get(value)
            if node is None:
                return None
        return node

    def _iter_subtree(self, node: _Node, depth: int) -> Iterator[tuple]:
        if depth == self.arity - 1:
            yield from node.table.values()
            return
        for child in node.table.values():
            yield from self._iter_subtree(child, depth + 1)

    def __iter__(self) -> Iterator[tuple]:
        return self.prefix_lookup(())

    def iter_next_values(self, prefix: tuple) -> Iterator:
        """Distinct child values: the keys of the level table below ``prefix``."""
        prefix = self._check_prefix(tuple(prefix))
        position = len(prefix)
        if position >= self.arity:
            yield from super().iter_next_values(prefix)
            return
        node = self._descend(prefix)
        if node is None:
            return
        yield from node.table.keys()

    def has_prefix(self, prefix: tuple) -> bool:
        prefix = self._check_prefix(tuple(prefix))
        return self._descend(prefix) is not None

    # ------------------------------------------------------------------
    # Introspection (the drawbacks §3.1 enumerates, made measurable)
    # ------------------------------------------------------------------
    def cursor(self) -> "HierarchicalCursor":
        """Native cursor: one Robin Hood probe per descend."""
        return HierarchicalCursor(self)

    def table_count(self) -> int:
        """Total number of hash tables allocated across all levels.

        Nodes live at depths ``0 .. arity-1``; the table at depth
        ``arity-1`` maps the final component to the stored row.
        """
        count = 0
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            count += 1
            if depth < self.arity - 1:
                for child in node.table.values():
                    stack.append((child, depth + 1))
        return count

    def memory_usage(self) -> int:
        """Design footprint: per-table headers plus slot arrays."""
        total = 0
        stack: list[tuple[_Node, int]] = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            total += _TABLE_HEADER_BYTES + node.table.capacity * (8 + 8 + 2)
            if depth < self.arity - 1:
                for child in node.table.values():
                    stack.append((child, depth + 1))
            else:
                total += len(node.table) * 8 * self.arity  # stored rows
        return total


class HierarchicalCursor(PrefixCursor):
    """Descent cursor over the table hierarchy: one probe per step.

    Frames are the ``_Node`` objects along the bound path; the final
    component resolves against the last table's stored row, so descents
    are exact at every depth (this structure has no ambiguity to patch).
    """

    __slots__ = ("_index", "_nodes", "_bound")

    def __init__(self, index: HierarchicalHashMap):
        self._index = index
        self._nodes: list = [index._root]
        self._bound = 0

    @property
    def depth(self) -> int:
        return self._bound

    def try_descend(self, value) -> bool:
        index = self._index
        if self._bound >= index.arity:
            raise SchemaError("cursor already at full depth")
        child = self._nodes[-1].table.get(value)
        if child is None:
            return False
        self._nodes.append(child)
        self._bound += 1
        return True

    def ascend(self) -> None:
        if not self._bound:
            raise SchemaError("cursor.ascend above the root")
        self._nodes.pop()
        self._bound -= 1

    def child_values(self):
        if self._bound >= self._index.arity:
            raise SchemaError("cursor at full depth has no children")
        return iter(list(self._nodes[-1].table.keys()))

    def count(self) -> int:
        if self._bound == self._index.arity:
            return 1
        current = self._nodes[-1]
        if isinstance(current, _Node):
            return current.count
        return 1  # a stored row (full depth handled above; defensive)
