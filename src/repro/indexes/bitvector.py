"""Rank/select bitvectors — the substrate of SuRF's LOUDS encoding.

A succinct trie (Zhang et al., SIGMOD'18) navigates entirely through two
primitives over bit arrays:

* ``rank1(pos)``   — number of set bits in positions ``[0, pos)``;
* ``select1(k)``   — position of the ``k``-th set bit (1-indexed).

We store bits packed into 64-bit words (Python ints) with a cumulative
popcount per word, giving O(1) rank (one table load plus one masked
popcount) and O(log n) select (binary search over the cumulative table,
then an in-word scan).  The real SuRF uses sampled selects for O(1); the
binary search preserves the access pattern at Python-appropriate
complexity — this is precisely the "succinct bitwise index, painfully slow
in Python" trade the calibration notes anticipate.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

_WORD_BITS = 64
_WORD_MASK = (1 << 64) - 1


class BitVectorBuilder:
    """Append-only bit accumulator; :meth:`freeze` yields a queryable vector."""

    def __init__(self):
        self._words: list[int] = []
        self._length = 0

    def append(self, bit: bool) -> None:
        """Append one bit."""
        word_index, offset = divmod(self._length, _WORD_BITS)
        if word_index == len(self._words):
            self._words.append(0)
        if bit:
            self._words[word_index] |= 1 << offset
        self._length += 1

    def extend(self, bits: Iterable[bool]) -> None:
        """Append every bit of ``bits``."""
        for bit in bits:
            self.append(bit)

    def __len__(self) -> int:
        return self._length

    def freeze(self) -> "BitVector":
        """Seal the accumulated bits into a queryable :class:`BitVector`."""
        return BitVector(self._words, self._length)


class BitVector:
    """Immutable bitvector with O(1) rank and O(log n) select."""

    __slots__ = ("_words", "_length", "_cumulative", "_ones")

    def __init__(self, words: list[int], length: int):
        self._words = words
        self._length = length
        cumulative = [0]
        running = 0
        for word in words:
            running += word.bit_count()
            cumulative.append(running)
        self._cumulative = cumulative
        self._ones = running

    @classmethod
    def from_bits(cls, bits: Iterable[bool]) -> "BitVector":
        builder = BitVectorBuilder()
        builder.extend(bits)
        return builder.freeze()

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, position: int) -> bool:
        if not 0 <= position < self._length:
            raise IndexError(f"bit {position} out of range [0, {self._length})")
        word_index, offset = divmod(position, _WORD_BITS)
        return bool((self._words[word_index] >> offset) & 1)

    @property
    def ones(self) -> int:
        """Total number of set bits."""
        return self._ones

    def rank1(self, position: int) -> int:
        """Set bits in ``[0, position)``; ``position`` may equal ``len(self)``."""
        if position <= 0:
            return 0
        if position > self._length:
            position = self._length
        word_index, offset = divmod(position, _WORD_BITS)
        partial = 0
        if offset:
            partial = (self._words[word_index] & ((1 << offset) - 1)).bit_count()
        return self._cumulative[word_index] + partial

    def rank0(self, position: int) -> int:
        """Clear bits in ``[0, position)``."""
        position = min(max(position, 0), self._length)
        return position - self.rank1(position)

    def select1(self, k: int) -> int:
        """Position of the ``k``-th set bit, 1-indexed; raises on overflow."""
        if not 1 <= k <= self._ones:
            raise IndexError(f"select1({k}) with only {self._ones} set bits")
        word_index = bisect.bisect_left(self._cumulative, k) - 1
        remaining = k - self._cumulative[word_index]
        word = self._words[word_index]
        position = word_index * _WORD_BITS
        while True:
            if word & 1:
                remaining -= 1
                if remaining == 0:
                    return position
            word >>= 1
            position += 1

    def select0(self, k: int) -> int:
        """Position of the ``k``-th clear bit, 1-indexed."""
        zeros = self._length - self._ones
        if not 1 <= k <= zeros:
            raise IndexError(f"select0({k}) with only {zeros} clear bits")
        low, high = 0, self._length - 1
        while low < high:
            middle = (low + high) // 2
            if self.rank0(middle + 1) < k:
                low = middle + 1
            else:
                high = middle
        return low

    def memory_usage(self) -> int:
        """Design footprint: packed bits plus the rank directory."""
        return len(self._words) * 8 + len(self._cumulative) * 4
