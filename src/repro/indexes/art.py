"""Adaptive Radix Tree (Leis et al., ICDE'13 — the paper's "ART" baseline).

ART is a 256-way radix tree whose inner nodes *adapt* their physical layout
to their fanout:

* ``Node4``   — up to 4 children, parallel key/child arrays, linear scan;
* ``Node16``  — up to 16 children, sorted key array (SIMD-searched in C);
* ``Node48``  — up to 48 children, a 256-entry byte→slot indirection array;
* ``Node256`` — a direct 256-pointer array.

Combined with *path compression* (inner nodes store the byte run shared by
all keys below them) and *lazy expansion* (single-key subtrees collapse to
a leaf), lookups touch only a handful of cache lines.  We reproduce all
three techniques; tuples are byte-encoded with the order-preserving codec
in :mod:`repro.indexes.keycodec`, so an attribute-level prefix lookup is a
byte-prefix descent plus a depth-first leaf sweep.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import ClassVar

from repro.indexes.base import TupleIndex
from repro.indexes.keycodec import encode_tuple

_NODE4_MAX = 4
_NODE16_MAX = 16
_NODE48_MAX = 48


class _Leaf:
    __slots__ = ("key", "row")

    def __init__(self, key: bytes, row: tuple):
        self.key = key
        self.row = row


class _Inner:
    """One adaptive inner node.

    Rather than four Python classes with identical logic and different
    constants, we keep the adaptive behaviour (the paper's point is the
    *memory layout*, which Python cannot express) in a single class that
    tracks its ``kind`` and switches layout at the same 4/16/48 thresholds,
    so structural tests can observe the same growth sequence as real ART.
    """

    __slots__ = ("prefix", "kind", "keys", "children", "child_index")

    def __init__(self, prefix: bytes = b""):
        self.prefix = prefix  # path-compressed byte run
        self.kind = 4
        self.keys: list[int] = []            # Node4/Node16: sorted key bytes
        self.children: list = []             # parallel to keys (4/16/48) or 256-wide
        self.child_index: list[int] | None = None  # Node48: byte -> slot (-1 empty)

    # ------------------------------------------------------------------
    def find_child(self, byte: int):
        if self.kind <= 16:
            for key, child in zip(self.keys, self.children):
                if key == byte:
                    return child
            return None
        if self.kind == 48:
            slot = self.child_index[byte]
            return self.children[slot] if slot >= 0 else None
        return self.children[byte]

    def add_child(self, byte: int, child) -> None:
        if self.kind <= 16:
            if len(self.keys) >= (self.kind if self.kind == 4 else _NODE16_MAX):
                if self.kind == 4 and len(self.keys) < _NODE16_MAX:
                    self.kind = 16
                else:
                    self._grow()
                    self.add_child(byte, child)
                    return
            position = 0
            while position < len(self.keys) and self.keys[position] < byte:
                position += 1
            self.keys.insert(position, byte)
            self.children.insert(position, child)
            if self.kind == 4 and len(self.keys) > _NODE4_MAX:
                self.kind = 16
            return
        if self.kind == 48:
            if len([c for c in self.children if c is not None]) >= _NODE48_MAX:
                self._grow()
                self.add_child(byte, child)
                return
            self.children.append(child)
            self.child_index[byte] = len(self.children) - 1
            return
        self.children[byte] = child

    def replace_child(self, byte: int, child) -> None:
        if self.kind <= 16:
            for position, key in enumerate(self.keys):
                if key == byte:
                    self.children[position] = child
                    return
            raise AssertionError(f"byte {byte} not present in Node{self.kind}")
        if self.kind == 48:
            self.children[self.child_index[byte]] = child
            return
        self.children[byte] = child

    def _grow(self) -> None:
        if self.kind == 16:
            child_index = [-1] * 256
            children = []
            for key, child in zip(self.keys, self.children):
                children.append(child)
                child_index[key] = len(children) - 1
            self.kind = 48
            self.keys = []
            self.children = children
            self.child_index = child_index
        elif self.kind == 48:
            wide = [None] * 256
            for byte in range(256):
                slot = self.child_index[byte]
                if slot >= 0:
                    wide[byte] = self.children[slot]
            self.kind = 256
            self.children = wide
            self.child_index = None

    def iter_children(self) -> Iterator:
        """Children in ascending key-byte order (for sorted enumeration)."""
        if self.kind <= 16:
            yield from self.children
        elif self.kind == 48:
            for byte in range(256):
                slot = self.child_index[byte]
                if slot >= 0:
                    yield self.children[slot]
        else:
            for child in self.children:
                if child is not None:
                    yield child

    def fanout(self) -> int:
        if self.kind <= 16:
            return len(self.keys)
        if self.kind == 48:
            return sum(1 for c in self.children if c is not None)
        return sum(1 for c in self.children if c is not None)


def _common_prefix_length(left: bytes, right: bytes) -> int:
    limit = min(len(left), len(right))
    for position in range(limit):
        if left[position] != right[position]:
            return position
    return limit


class AdaptiveRadixTree(TupleIndex):
    """ART over order-preserving byte-encoded tuples."""

    NAME: ClassVar[str] = "art"

    def __init__(self, arity: int):
        super().__init__(arity)
        self._root: _Inner | _Leaf | None = None

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        key = encode_tuple(row)
        if self._root is None:
            self._root = _Leaf(key, row)
            self._size += 1
            return
        self._root = self._insert_at(self._root, key, 0, row)

    def _insert_at(self, node, key: bytes, depth: int, row: tuple):
        if isinstance(node, _Leaf):
            if node.key == key:
                return node  # duplicate
            # split the two leaves below a new path-compressed inner node
            shared = _common_prefix_length(node.key[depth:], key[depth:])
            inner = _Inner(prefix=key[depth:depth + shared])
            depth += shared
            inner.add_child(node.key[depth], node)
            inner.add_child(key[depth], _Leaf(key, row))
            self._size += 1
            return inner

        shared = _common_prefix_length(node.prefix, key[depth:])
        if shared < len(node.prefix):
            # prefix mismatch: split the compressed path
            parent = _Inner(prefix=node.prefix[:shared])
            old_branch_byte = node.prefix[shared]
            node.prefix = node.prefix[shared + 1:]
            parent.add_child(old_branch_byte, node)
            parent.add_child(key[depth + shared], _Leaf(key, row))
            self._size += 1
            return parent

        depth += len(node.prefix)
        branch = key[depth]
        child = node.find_child(branch)
        if child is None:
            node.add_child(branch, _Leaf(key, row))
            self._size += 1
        else:
            new_child = self._insert_at(child, key, depth + 1, row)
            if new_child is not child:
                node.replace_child(branch, new_child)
        return node

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        key = encode_tuple(row)
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, _Leaf):
                return node.key == key
            if key[depth:depth + len(node.prefix)] != node.prefix:
                return False
            depth += len(node.prefix)
            if depth >= len(key):
                return False
            node = node.find_child(key[depth])
            depth += 1
        return False

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        prefix = self._check_prefix(tuple(prefix))
        encoded = encode_tuple(prefix)
        node = self._root
        depth = 0
        # descend as far as the encoded prefix constrains the path
        while node is not None and depth < len(encoded):
            if isinstance(node, _Leaf):
                if node.key[:len(encoded)] == encoded:
                    yield node.row
                return
            run = node.prefix
            remaining = encoded[depth:]
            shared = _common_prefix_length(run, remaining)
            if shared < len(run):
                if shared == len(remaining):
                    break  # prefix exhausted inside the compressed path
                return  # diverged: nothing matches
            depth += len(run)
            if depth >= len(encoded):
                break
            node = node.find_child(encoded[depth])
            depth += 1
        if node is None:
            return
        yield from self._iter_leaves(node)

    def count_prefix(self, prefix: tuple) -> int:
        count = 0
        for _ in self.prefix_lookup(prefix):
            count += 1
        return count

    def _iter_leaves(self, node) -> Iterator[tuple]:
        stack = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, _Leaf):
                yield current.row
            else:
                stack.extend(reversed(list(current.iter_children())))

    def __iter__(self) -> Iterator[tuple]:
        if self._root is None:
            return iter(())
        return self._iter_leaves(self._root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def node_histogram(self) -> dict[int, int]:
        """Count of inner nodes per kind (4/16/48/256), for structure tests."""
        histogram: dict[int, int] = {4: 0, 16: 0, 48: 0, 256: 0}
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                histogram[node.kind] += 1
                stack.extend(node.iter_children())
        return histogram

    def memory_usage(self) -> int:
        """Design footprint per the ART paper's node sizes."""
        node_bytes = {4: 16 + 4 + 4 * 8, 16: 16 + 16 + 16 * 8,
                      48: 16 + 256 + 48 * 8, 256: 16 + 256 * 8}
        total = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                total += len(node.key) + 8 * self.arity
            else:
                total += node_bytes[node.kind] + len(node.prefix)
                stack.extend(node.iter_children())
        return total
