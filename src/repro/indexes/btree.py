"""In-memory B+tree (the paper's "TLX-BTree" baseline).

TLX's ``btree_map`` is a cache-friendly B+tree: wide nodes (many keys per
node) to amortize pointer chasing, all tuples in linked leaves, separator
keys in inner nodes.  We reproduce that design over lexicographically
ordered tuples:

* leaves hold sorted runs of tuples and a ``next`` pointer for range scans;
* inner nodes hold separator tuples and child pointers;
* point lookup is a root-to-leaf descent with binary search per node;
* prefix lookup locates the lower bound of the prefix and scans leaves
  until the prefix no longer matches — exactly the key-prefix range scan
  the Generic Join needs from tree indexes (§1).

The node fanout defaults to 64, in the range TLX uses for 8-byte keys.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator
from typing import ClassVar

from repro.errors import ConfigurationError
from repro.indexes.base import TupleIndex


class _Leaf:
    __slots__ = ("rows", "next")

    def __init__(self):
        self.rows: list[tuple] = []
        self.next: _Leaf | None = None


class _Inner:
    __slots__ = ("separators", "children")

    def __init__(self):
        # children[i] covers keys < separators[i]; children[-1] covers the rest
        self.separators: list[tuple] = []
        self.children: list = []


class BPlusTree(TupleIndex):
    """B+tree over whole tuples with prefix range scans."""

    NAME: ClassVar[str] = "btree"

    def __init__(self, arity: int, fanout: int = 64):
        super().__init__(arity)
        if fanout < 4:
            raise ConfigurationError(f"B+tree fanout must be >= 4, got {fanout}")
        self._fanout = fanout
        self._root: _Leaf | _Inner = _Leaf()
        self._height = 1

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        split = self._insert_into(self._root, row)
        if split is not None:
            separator, right = split
            new_root = _Inner()
            new_root.separators = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert_into(self, node, row: tuple):
        """Insert recursively; returns ``(separator, new_right_sibling)`` on split."""
        if isinstance(node, _Leaf):
            position = bisect.bisect_left(node.rows, row)
            if position < len(node.rows) and node.rows[position] == row:
                return None  # duplicate: set semantics
            node.rows.insert(position, row)
            self._size += 1
            if len(node.rows) > self._fanout:
                return self._split_leaf(node)
            return None

        child_pos = bisect.bisect_right(node.separators, row)
        split = self._insert_into(node.children[child_pos], row)
        if split is None:
            return None
        separator, right = split
        node.separators.insert(child_pos, separator)
        node.children.insert(child_pos + 1, right)
        if len(node.children) > self._fanout:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        middle = len(leaf.rows) // 2
        right = _Leaf()
        right.rows = leaf.rows[middle:]
        leaf.rows = leaf.rows[:middle]
        right.next = leaf.next
        leaf.next = right
        return right.rows[0], right

    def _split_inner(self, inner: _Inner):
        middle = len(inner.children) // 2
        right = _Inner()
        separator = inner.separators[middle - 1]
        right.separators = inner.separators[middle:]
        right.children = inner.children[middle:]
        inner.separators = inner.separators[:middle - 1]
        inner.children = inner.children[:middle]
        return separator, right

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def _descend_to_leaf(self, key: tuple) -> _Leaf:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[bisect.bisect_right(node.separators, key)]
        return node

    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        leaf = self._descend_to_leaf(row)
        position = bisect.bisect_left(leaf.rows, row)
        return position < len(leaf.rows) and leaf.rows[position] == row

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        prefix = self._check_prefix(tuple(prefix))
        width = len(prefix)
        leaf = self._descend_to_leaf(prefix)
        position = bisect.bisect_left(leaf.rows, prefix)
        while leaf is not None:
            while position < len(leaf.rows):
                row = leaf.rows[position]
                if row[:width] != prefix:
                    if row[:width] > prefix:
                        return
                else:
                    yield row
                position += 1
            leaf = leaf.next
            position = 0

    def count_prefix(self, prefix: tuple) -> int:
        count = 0
        for _ in self.prefix_lookup(prefix):
            count += 1
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[tuple]:
        return self.prefix_lookup(())

    @property
    def height(self) -> int:
        return self._height

    def memory_usage(self) -> int:
        """Design footprint: tuple words in leaves + separators/pointers in inners."""
        leaves_bytes = 0
        inner_bytes = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Leaf):
                leaves_bytes += len(node.rows) * 8 * self.arity + 8  # rows + next ptr
            else:
                inner_bytes += len(node.separators) * 8 * self.arity
                inner_bytes += len(node.children) * 8
                stack.extend(node.children)
        return leaves_bytes + inner_bytes

    def check_invariants(self) -> None:
        """Structural validation used by the property-based tests.

        Verifies sortedness within nodes, separator bounds, leaf-chain
        order and that ``len(self)`` equals the number of leaf tuples.
        """
        counted = self._check_node(self._root, None, None)
        assert counted == self._size, f"size mismatch: {counted} != {self._size}"
        # leaf chain must produce globally sorted output
        rows = list(self)
        assert rows == sorted(rows), "leaf chain out of order"

    def _check_node(self, node, low, high) -> int:
        if isinstance(node, _Leaf):
            assert node.rows == sorted(node.rows)
            for row in node.rows:
                assert low is None or row >= low
                assert high is None or row < high
            return len(node.rows)
        assert node.separators == sorted(node.separators)
        assert len(node.children) == len(node.separators) + 1
        total = 0
        bounds = [low, *node.separators, high]
        for child, (lo, hi) in zip(node.children, zip(bounds, bounds[1:])):
            total += self._check_node(child, lo, hi)
        return total
