"""Lazy COLT index building — trie levels materialize on first descent.

Free Join (Wang et al., SIGMOD'23) observes that a WCOJ trie only needs
the levels the join actually descends into: their COLT (column-oriented
lazy trie) builds each level on first touch, so a join that dies at an
early attribute never pays for the deep levels at all.  The engine
already had the probe-time half of this idea — the
:class:`~repro.indexes.base.SyncedBatchCursor` memoizes candidate
arrays per visited prefix — and :class:`LazyTrieAdapter` promotes it to
a *build-time* strategy: an :class:`~repro.engine.ir.IndexSpec` with
``lazy=True`` prepares in O(1), and the underlying index is bulk-built
level-at-a-time the first time a cursor needs that depth.

**Materialization policy.**  The first descent builds a *truncated*
index of exactly the requested depth — ``make_index(kind, depth)`` over
the first ``depth`` permuted column snapshots (``build_bulk`` lexsorts
and dedupes, so repeated prefixes collapse, and the truncated index is
exact at its own final depth).  Any later, deeper request rebuilds at
the full arity in one step.  Two builds bound the total work at roughly
twice an eager build, while the headline case — a join that only ever
exercises a prefix of the attribute order — pays for that prefix only.

**Snapshot pinning.**  The adapter snapshots the relation's column
arrays at construction time under a version-stable retry loop.  All
levels — whenever they materialize — are built from that one snapshot,
so a concurrent ``relation.extend()`` can never produce a trie whose
levels mix old and new rows: readers either see the pinned pre-extend
state at every depth or (after re-prepare) a fresh adapter.  Cache
invalidation calls :meth:`close`, which detaches the cache upgrade
callback; a reader still holding the adapter keeps descending into the
pinned snapshot safely.

**Thread safety** follows the engine's lock discipline: one internal
lock guards state transitions, the published state is a single
atomically-swapped tuple ``(index, depth, generation)``, and callbacks
(:attr:`on_deepen`, used by the session cache to upgrade a shallow
entry's ``built_depth`` in place) run outside the lock.

Exactness matches the cursor contracts in :mod:`repro.indexes.base`:
inner-depth probes may pass an index's rare false positives, final-depth
probes force the full build and are exact.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence

import numpy as np

from repro.indexes.base import BatchCursor, PrefixCursor, membership_mask
from repro.indexes.registry import make_index
from repro.joins.results import Stopwatch

#: index kinds whose ``build_bulk`` supports level-at-a-time truncation
#: (columnar lexsort+dedupe builds; RA309 enforces this set on plans)
LAZY_CAPABLE_KINDS = ("sonic", "sortedtrie")


class _Level1Index:
    """The depth-1 materialization: distinct first-column values.

    Sonic indexes need >= 2 columns (a 1-column relation has no prefix
    structure to patch), and even for kinds that allow arity 1 a full
    trie build is overkill for what depth 1 answers: level-0 candidate
    walks, level-1 membership, advisory residual counts.  One
    ``np.unique`` over the pinned first column covers all three, for
    every lazy-capable kind uniformly — exact at its own final depth,
    like any truncated index.
    """

    __slots__ = ("_values", "_members", "_total")

    def __init__(self, column):
        values, counts = np.unique(column, return_counts=True)
        self._values = values
        #: value → residual tuple count (the advisory count_prefix answer)
        self._members = dict(zip(values.tolist(), counts.tolist()))
        self._total = int(len(column))

    def has_prefix(self, prefix: tuple) -> bool:
        return prefix[0] in self._members

    def iter_next_values(self, prefix: tuple):
        return iter(self._values.tolist())

    def count_prefix(self, prefix: tuple) -> int:
        if not prefix:
            return self._total
        return int(self._members.get(prefix[0], 0))

    def memory_usage(self) -> int:
        return int(self._values.nbytes) + 64 * len(self._members)

    def batch_cursor(self) -> "_Level1BatchCursor":
        return _Level1BatchCursor(self)


class _Level1BatchCursor(BatchCursor):
    __slots__ = ("_index", "_metrics")

    def __init__(self, index: _Level1Index):
        self._index = index
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        self._metrics = metrics

    def candidates(self, prefix: tuple):
        return self._index._values

    def probe_many(self, prefix: tuple, values):
        return membership_mask(self._index._values, values)

    def count(self, prefix: tuple) -> int:
        return self._index.count_prefix(prefix)


class LazyTrieAdapter:
    """A drop-in :class:`~repro.indexes.base.TupleIndex` stand-in whose
    levels materialize on first descent.

    Quacks like a built index of the relation's full arity — ``arity``,
    ``cursor()``, ``batch_cursor()``, ``memory_usage()`` — so
    :class:`~repro.core.adapter.IndexAdapter` and both Generic Join
    engines use it unchanged.
    """

    NAME = "lazy"
    SUPPORTS_PREFIX = True
    SUPPORTS_BATCH = True
    SUPPORTS_BULK_BUILD = False
    #: cache invalidation must close() us: a fingerprint bump means the
    #: backing relation changed under the snapshot (see module docstring)
    CLOSE_ON_INVALIDATE = True

    def __init__(self, relation, kind: str,
                 attribute_order: Sequence[str],
                 permutation: Sequence[int],
                 options: "Mapping[str, object] | None" = None,
                 on_deepen=None):
        if kind not in LAZY_CAPABLE_KINDS:
            raise ValueError(
                f"index kind {kind!r} has no level-at-a-time build; "
                f"lazy adapters support {LAZY_CAPABLE_KINDS}")
        # version-stable column snapshot: Relation.columns() fills its
        # per-position cache lazily, so a concurrent extend() between two
        # column materializations could hand us mismatched lengths — the
        # version check detects the race and retries
        while True:
            version = relation.version
            columns = relation.columns()
            if relation.version == version:
                break
        self._columns = tuple(columns[p] for p in permutation)
        self.arity = len(self._columns)
        #: snapshot cardinality (root-level advisory count, no build)
        self.tuple_count = len(self._columns[0]) if self._columns else 0
        self.kind = kind
        self.attribute_order = tuple(attribute_order)
        self._options = dict(options or {})
        self._lock = threading.Lock()
        #: atomically-swapped (inner index | None, built depth, generation)
        self._state: tuple = (None, 0, 0)
        self._pending_ns = 0
        self._closed = False
        #: called (outside the lock) after every deepening build; the
        #: session cache hooks this to upgrade its entry's built_depth
        self.on_deepen = on_deepen

    # ------------------------------------------------------------------
    @property
    def built_depth(self) -> int:
        """How many leading levels are currently materialized."""
        return self._state[1]

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return self.tuple_count

    # ------------------------------------------------------------------
    def _ensure_depth(self, depth: int) -> tuple:
        """Materialize at least ``depth`` levels; return (index, generation).

        Double-checked under the internal lock; the build itself runs
        inside the lock (one canonical build per level set, the same
        serialization the eager prepare path gets from the cache's CAS
        publish), and the deepen callback fires after release.
        """
        state = self._state
        if state[1] >= depth:
            return (state[0], state[2])
        with self._lock:
            inner, built, generation = self._state
            if built >= depth:
                return (inner, generation)
            # first touch builds exactly the requested depth; any deeper
            # request afterwards jumps straight to the full arity, so an
            # adapter rebuilds at most once (≤ ~2x an eager build) while
            # prefix-only workloads never pay for the deep levels
            target = depth if built == 0 else self.arity
            target = min(max(target, depth), self.arity)
            t0 = Stopwatch.now_ns()
            index, target = self._build_truncated(target)
            self._pending_ns += Stopwatch.now_ns() - t0
            generation += 1
            self._state = (index, target, generation)
            callback = self.on_deepen if not self._closed else None
        if callback is not None:
            callback(self)
        return (index, generation)

    def _build_truncated(self, depth: int):
        """Bulk-build a ``depth``-level index from the pinned snapshot.

        Returns ``(index, actual depth)``: depth 1 uses the dedicated
        :class:`_Level1Index` (Sonic has no arity-1 form); values that
        admit no total order fall back to a full build.
        """
        if depth == 1:
            try:
                return _Level1Index(self._columns[0]), 1
            except TypeError:
                depth = self.arity  # unorderable values: skip truncation
        options = dict(self._options)
        options.pop("sorted", None)
        if self.kind == "sonic":
            from repro.core.config import SonicConfig

            depth = max(depth, 2)  # Sonic indexes >= 2 columns
            config = SonicConfig.for_tuples(
                max(self.tuple_count, 1),
                bucket_size=options.pop("bucket_size", 8),
                overallocation=options.pop("overallocation", 2.0),
            )
            index = make_index("sonic", depth, config=config, **options)
        else:
            index = make_index(self.kind, depth, **options)
        if self.tuple_count:
            index.build_bulk(self._columns[:depth])
        return index, depth

    # ------------------------------------------------------------------
    def take_pending_charge(self) -> float:
        """Drain accumulated materialization time, in seconds.

        The execute stage adds this to ``metrics.build_seconds`` after
        every run, so deferred builds surface exactly where the §5.15
        build-included timing contract expects them — on the execution
        that actually materialized the levels.
        """
        with self._lock:
            pending, self._pending_ns = self._pending_ns, 0
        return pending * 1e-9

    def close(self) -> None:
        """Detach from the cache (idempotent).

        Called by :meth:`~repro.engine.cache.IndexCache.invalidate_relation`
        when the backing relation's fingerprint moves on.  The pinned
        snapshot stays valid — in-flight readers keep their consistent
        pre-mutation view — but no further cache upgrades fire.
        """
        with self._lock:
            self._closed = True
            self.on_deepen = None

    # ------------------------------------------------------------------
    def memory_usage(self) -> int:
        inner = self._state[0]
        if inner is None:
            return 256  # token charge for the unbuilt shell
        reported = inner.memory_usage()
        return reported if reported > 0 else 256

    def cursor(self) -> "LazyCursor":
        return LazyCursor(self)

    def batch_cursor(self) -> "LazyBatchCursor":
        return LazyBatchCursor(self)

    def __repr__(self) -> str:
        return (f"LazyTrieAdapter(kind={self.kind!r}, arity={self.arity}, "
                f"built_depth={self.built_depth}, "
                f"tuples={self.tuple_count})")


class LazyCursor(PrefixCursor):
    """Stateless-prefix cursor over a :class:`LazyTrieAdapter`.

    The :class:`~repro.indexes.base.FallbackCursor` pattern — the cursor
    owns only its prefix list and re-addresses the inner index per call —
    which makes inner-index *generation* changes (a concurrent deepen
    replacing the truncated index with the full one) harmless: every
    call fetches the current index at the depth it needs.
    """

    __slots__ = ("_adapter", "_prefix")

    def __init__(self, adapter: LazyTrieAdapter):
        self._adapter = adapter
        self._prefix: list = []

    def try_descend(self, value) -> bool:
        self._prefix.append(value)
        index, _ = self._adapter._ensure_depth(len(self._prefix))
        if index.has_prefix(tuple(self._prefix)):
            return True
        self._prefix.pop()
        return False

    def ascend(self) -> None:
        self._prefix.pop()

    def child_values(self):
        index, _ = self._adapter._ensure_depth(len(self._prefix) + 1)
        return index.iter_next_values(tuple(self._prefix))

    def count(self) -> int:
        if not self._prefix:
            # root: answer from the snapshot without building anything —
            # seed selection at depth 0 must not defeat laziness
            return self._adapter.tuple_count
        index, _ = self._adapter._ensure_depth(len(self._prefix))
        return index.count_prefix(tuple(self._prefix))

    @property
    def depth(self) -> int:
        return len(self._prefix)


class LazyBatchCursor(BatchCursor):
    """Batch kernel over a :class:`LazyTrieAdapter`.

    Keeps its own per-prefix candidate memo (the COLT memoization the
    lazy build strategy grew out of), so arrays survive inner-index
    generation swaps; the wrapped native batch cursor is recreated
    whenever the generation moves — safe because batch cursors are
    stateless prefix-addressed kernels.
    """

    __slots__ = ("_adapter", "_inner", "_generation", "_memo", "_metrics")

    def __init__(self, adapter: LazyTrieAdapter):
        self._adapter = adapter
        self._inner = None
        self._generation = -1
        self._memo: dict = {}
        self._metrics = None

    def attach_metrics(self, metrics) -> None:
        self._metrics = metrics
        if self._inner is not None:
            self._inner.attach_metrics(metrics)

    def _inner_cursor(self, depth: int):
        index, generation = self._adapter._ensure_depth(depth)
        if generation != self._generation:
            self._inner = index.batch_cursor()
            if self._metrics is not None:
                self._inner.attach_metrics(self._metrics)
            self._generation = generation
        return self._inner

    def candidates(self, prefix: tuple):
        array = self._memo.get(prefix)
        if array is None:
            array = self._inner_cursor(len(prefix) + 1).candidates(prefix)
            self._memo[prefix] = array
        return array

    def probe_many(self, prefix: tuple, values):
        return membership_mask(self.candidates(prefix), values)

    def count(self, prefix: tuple) -> int:
        if not prefix:
            return self._adapter.tuple_count
        index, _ = self._adapter._ensure_depth(len(prefix))
        return index.count_prefix(prefix)
