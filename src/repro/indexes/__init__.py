"""Index structures for worst-case optimal joins (§5.4 baseline set).

Every structure implements :class:`repro.indexes.base.TupleIndex`.  The
registry (see :func:`repro.indexes.make_index`) is pre-populated with the
full baseline set of the paper's comparative study plus Sonic itself:

===============  ==============================================  ========
registry name    structure                                        prefix?
===============  ==============================================  ========
``sonic``        Sonic index (the paper's contribution, §3)       yes
``hashset``      SwissTable flat hash set ("Abseil Hash Set")     no
``robinhood``    Robin Hood map ("Tessil Fast Hash Map")          no
``btree``        B+tree ("TLX-BTree")                             yes
``art``          Adaptive Radix Tree                              yes
``hattrie``      HAT-trie (burst trie, "Tessil HAT-Trie")         yes
``hiermap``      Hierarchical hash map (hash of hash tables)      yes
``hashtrie``     Umbra hash trie (lazy expansion + pruning)       yes
``surf``         SuRF succinct range filter (approximate)         no
``sortedtrie``   Sorted-array trie (LFTJ interface)               yes
===============  ==============================================  ========
"""

from repro.indexes.art import AdaptiveRadixTree
from repro.indexes.base import (
    BatchCursor,
    CursorBatchCursor,
    FallbackBatchCursor,
    FallbackCursor,
    PointIndex,
    PrefixCursor,
    SyncedBatchCursor,
    TupleIndex,
)
from repro.indexes.bitvector import BitVector, BitVectorBuilder
from repro.indexes.btree import BPlusTree
from repro.indexes.hashset import SwissTableSet
from repro.indexes.hashtrie import HashTrie
from repro.indexes.hattrie import HatTrie
from repro.indexes.hierarchical import HierarchicalHashMap
from repro.indexes.registry import (
    batch_capable_indexes,
    ensure_registered,
    make_index,
    prefix_capable_indexes,
    register_index,
    registered_indexes,
)
from repro.indexes.robinhood import RobinHoodMap, RobinHoodTupleIndex
from repro.indexes.sorted_trie import SortedTrie, TrieIterator
from repro.indexes.surf import SuccinctRangeFilter

__all__ = [
    "AdaptiveRadixTree",
    "BatchCursor",
    "BitVector",
    "BitVectorBuilder",
    "BPlusTree",
    "CursorBatchCursor",
    "FallbackBatchCursor",
    "FallbackCursor",
    "HashTrie",
    "HatTrie",
    "HierarchicalHashMap",
    "PointIndex",
    "PrefixCursor",
    "RobinHoodMap",
    "RobinHoodTupleIndex",
    "SortedTrie",
    "SuccinctRangeFilter",
    "SwissTableSet",
    "SyncedBatchCursor",
    "TrieIterator",
    "TupleIndex",
    "batch_capable_indexes",
    "ensure_registered",
    "make_index",
    "prefix_capable_indexes",
    "register_index",
    "registered_indexes",
]


def _register_builtins() -> None:
    from repro.core.sonic import SonicIndex

    for cls in (
        SonicIndex,
        SwissTableSet,
        RobinHoodTupleIndex,
        BPlusTree,
        AdaptiveRadixTree,
        HatTrie,
        HierarchicalHashMap,
        HashTrie,
        SuccinctRangeFilter,
        SortedTrie,
    ):
        register_index(cls.NAME, cls, replace=True)


_register_builtins()
