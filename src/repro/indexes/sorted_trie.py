"""Sorted-array trie — the iterator interface Leapfrog Triejoin needs.

The paper's future-work section (§7) observes that the Leapfrog Triejoin
requires "a trie-like interface to an index structure" and that such an
interface "could be provided in a straight-forward manner by sorting the
input".  This module is that interface: the relation's tuples are stored
as one lexicographically sorted array, and a :class:`TrieIterator` exposes
the LFTJ navigation operations (``open``/``up``/``next``/``seek``/``key``)
as binary-search range narrowing over that array.

As a :class:`~repro.indexes.base.TupleIndex` it also supports exact prefix
lookup and O(log n) prefix counting (two binary searches), which makes it a
useful extra baseline for the prefix-operation experiments.
"""

from __future__ import annotations

import bisect
import heapq
import threading
from collections.abc import Iterator
from typing import ClassVar

import numpy as np

from repro.errors import QueryError
from repro.indexes.base import (
    PrefixCursor,
    SyncedBatchCursor,
    TupleIndex,
    bulk_columns,
    sorted_unique_rows,
    value_array,
)


class SortedTrie(TupleIndex):
    """A static trie view over one sorted tuple array."""

    NAME: ClassVar[str] = "sortedtrie"
    SUPPORTS_BATCH: ClassVar[bool] = True
    SUPPORTS_BULK_BUILD: ClassVar[bool] = True

    def __init__(self, arity: int):
        super().__init__(arity)
        self._pending: list[tuple] = []
        self._rows: list[tuple] = []
        self._dirty = False
        self._batch_columns: tuple[np.ndarray, ...] | None = None
        self._flush_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Build (sort-on-freeze, like any sort-based join preparation)
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        # build-phase writes are pre-publication: RA404 forbids insert()
        # after the index is handed to an adapter/executor, so no other
        # thread can observe these; only the lazy *flush* (which runs on
        # the shared probe path) needs the lock
        row = self._check_row(row)
        self._pending.append(row)  # repro: noqa[RA703]
        self._dirty = True  # repro: noqa[RA703]

    def build_bulk(self, columns) -> None:
        """Columnar build: one vectorized sort straight into the base array.

        §7's "sorting the input", done as input: the columns are lexsorted
        and deduplicated in numpy and published as the frozen sorted base,
        skipping the per-insert pending list and the merge flush entirely.
        Falls back to per-row inserts when the trie already holds rows
        (the merge flush handles that case correctly) or when the values
        admit no total order.
        """
        arrays = bulk_columns(self.arity, columns)
        rows = None
        if not self._rows and not self._pending:
            rows = sorted_unique_rows(arrays)
        if rows is None:
            self._insert_columns(arrays)
            return
        with self._flush_lock:
            self._rows = rows
            self._pending = []
            self._size = len(rows)
            self._batch_columns = None
            self._dirty = False

    def _ensure_sorted(self) -> None:
        """Flush pending inserts into the sorted base array.

        The base is already sorted and duplicate-free, so a flush is a
        linear merge of the sorted pending batch into it — not a full
        re-sort of everything ever inserted (this flush sits directly
        under the probe path of every lookup and batch kernel).

        The flush is double-check locked: a session cache can hand one
        generic-join ``sortedtrie`` structure to concurrent executors
        before its first probe ever sorted it, and an unguarded flush
        would let a second reader observe the new ``_rows`` with the
        cleared ``_pending`` *mixed* — losing rows for good.  ``_dirty``
        is cleared last, so the lock-free fast path only skips the lock
        after the merged array is fully published.
        """
        if not self._dirty:
            return
        with self._flush_lock:
            if not self._dirty:
                return  # another thread completed the flush
            pending = sorted(set(self._pending))
            base = self._rows
            if not base:
                merged = pending
            elif not pending:
                merged = base
            else:
                # both inputs sorted & internally duplicate-free: merge
                # keeps global order and makes cross-input duplicates
                # adjacent, so dict.fromkeys drops them in one ordered pass
                merged = list(dict.fromkeys(heapq.merge(base, pending)))
            self._rows = merged
            self._pending = []
            self._size = len(merged)
            self._batch_columns = None
            self._dirty = False

    @property
    def rows(self) -> list[tuple]:
        self._ensure_sorted()
        return self._rows

    def __len__(self) -> int:
        self._ensure_sorted()
        return self._size

    # ------------------------------------------------------------------
    # TupleIndex operations
    # ------------------------------------------------------------------
    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        self._ensure_sorted()
        position = bisect.bisect_left(self._rows, row)
        return position < len(self._rows) and self._rows[position] == row

    def _prefix_range(self, prefix: tuple) -> tuple[int, int]:
        """Half-open row range matching ``prefix`` via two binary searches."""
        low = bisect.bisect_left(self._rows, prefix)
        # the successor of any tuple starting with `prefix` is found by
        # appending an "infinite" sentinel; comparing with a longer tuple
        # whose last real component is bumped does the same without one.
        high = bisect.bisect_right(self._rows, prefix + (_Top(),))
        return low, high

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        prefix = self._check_prefix(tuple(prefix))
        self._ensure_sorted()
        low, high = self._prefix_range(prefix)
        for position in range(low, high):
            yield self._rows[position]

    def count_prefix(self, prefix: tuple) -> int:
        prefix = self._check_prefix(tuple(prefix))
        self._ensure_sorted()
        low, high = self._prefix_range(prefix)
        return high - low

    def __iter__(self) -> Iterator[tuple]:
        self._ensure_sorted()
        return iter(self._rows)

    def memory_usage(self) -> int:
        """Design footprint: one flat sorted array of tuple words."""
        self._ensure_sorted()
        return len(self._rows) * 8 * self.arity

    def iter_next_values(self, prefix: tuple) -> Iterator:
        """Distinct child values by galloping over the sorted range."""
        prefix = self._check_prefix(tuple(prefix))
        position = len(prefix)
        if position >= self.arity:
            yield from super().iter_next_values(prefix)
            return
        self._ensure_sorted()
        low, high = self._prefix_range(prefix)
        while low < high:
            value = self._rows[low][position]
            yield value
            low = bisect.bisect_right(self._rows, prefix + (value, _Top()), low, high)

    def has_prefix(self, prefix: tuple) -> bool:
        prefix = self._check_prefix(tuple(prefix))
        self._ensure_sorted()
        low, high = self._prefix_range(prefix)
        return low < high

    # ------------------------------------------------------------------
    # LFTJ iterator and Generic Join cursor
    # ------------------------------------------------------------------
    def iterator(self) -> "TrieIterator":
        """A fresh LFTJ iterator over the sorted rows."""
        self._ensure_sorted()
        return TrieIterator(self._rows, self.arity)

    def cursor(self) -> "SortedTrieCursor":
        """Native cursor: binary-search range narrowing per descend."""
        return SortedTrieCursor(self)

    def batch_cursor(self) -> "SortedTrieBatchCursor":
        """Native batch kernel: vectorized range intersection (§Free Join).

        Columnar views of the sorted array are materialized lazily, once
        per index, and shared by every cursor over it.
        """
        return SortedTrieBatchCursor(self)

    def columns(self) -> tuple[np.ndarray, ...]:
        """Per-component arrays over the sorted rows (lazy, cached).

        Column ``i`` lists component ``i`` of every stored tuple in
        lexicographic row order — the layout the batch kernel's
        ``searchsorted`` range narrowing runs on.
        """
        self._ensure_sorted()
        columns = self._batch_columns
        if columns is None:
            with self._flush_lock:
                columns = self._batch_columns
                if columns is None:
                    rows = self._rows
                    columns = tuple(
                        value_array([row[position] for row in rows])
                        for position in range(self.arity)
                    )
                    self._batch_columns = columns
        return columns


class _Top:
    """Sentinel comparing greater than every value (for range upper bounds)."""

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True


class TrieIterator:
    """Leapfrog Triejoin's trie cursor over a sorted tuple array.

    The cursor sits at a *depth* (``-1`` = above the root).  At depth ``d``
    it enumerates the distinct values of component ``d`` among rows matching
    the values bound at depths ``0..d-1``.  All operations are binary
    searches over the (depth-scoped) row range, giving the logarithmic
    ``seek`` LFTJ's complexity analysis assumes.
    """

    def __init__(self, rows: list[tuple], arity: int):
        self._rows = rows
        self._arity = arity
        # per-depth state: (low, high) bounds of the current group and the
        # cursor position of the current distinct value
        self._bounds: list[tuple[int, int]] = [(0, len(rows))]
        self._positions: list[int] = []

    @property
    def depth(self) -> int:
        return len(self._positions) - 1

    def open(self) -> None:
        """Descend to the first value of the next component."""
        if self.depth + 1 >= self._arity:
            raise QueryError("TrieIterator.open below the last component")
        low, high = self._bounds[-1]
        if low >= high:
            raise QueryError("TrieIterator.open on an empty range")
        self._positions.append(low)
        self._bounds.append(self._value_range(low))

    def up(self) -> None:
        """Return to the parent component."""
        if not self._positions:
            raise QueryError("TrieIterator.up above the root")
        self._positions.pop()
        self._bounds.pop()

    def key(self):
        """The distinct value the cursor currently points at."""
        if self.at_end():
            raise QueryError("TrieIterator.key at end of range")
        return self._rows[self._positions[-1]][self.depth]

    def at_end(self) -> bool:
        """True when the cursor moved past its group's last value."""
        low, high = self._bounds[-2]
        return self._positions[-1] >= high

    def next(self) -> None:
        """Advance to the next distinct value at this depth."""
        __, high = self._bounds[-2]
        self._positions[-1] = self._bounds[-1][1]  # skip the current group
        if self._positions[-1] < high:
            self._bounds[-1] = self._value_range(self._positions[-1])

    def seek(self, value) -> None:
        """Advance to the first value >= ``value`` (LFTJ's leapfrogging step)."""
        depth = self.depth
        low = self._positions[-1]
        __, high = self._bounds[-2]
        probe = self._rows[low][:depth] + (value,)
        position = bisect.bisect_left(self._rows, probe, low, high)
        self._positions[-1] = position
        if position < high:
            self._bounds[-1] = self._value_range(position)

    def _value_range(self, position: int) -> tuple[int, int]:
        """Row range of the distinct value at ``position`` for this depth."""
        depth = len(self._positions) - 1
        __, high = self._bounds[depth]
        prefix = self._rows[position][:depth + 1]
        end = bisect.bisect_right(self._rows, prefix + (_Top(),), position, high)
        return position, end


class SortedTrieCursor(PrefixCursor):
    """:class:`~repro.indexes.base.PrefixCursor` over the sorted array.

    Each descend is a binary-search range narrowing; ``count`` is the
    (exact) range width, ``child_values`` gallops over distinct values.
    Implements the same contract as the native Sonic cursor.
    """

    __slots__ = ("_rows", "_arity", "_ranges")

    def __init__(self, trie: SortedTrie):
        trie._ensure_sorted()
        self._rows = trie._rows
        self._arity = trie.arity
        self._ranges: list[tuple[int, int]] = [(0, len(self._rows))]

    @property
    def depth(self) -> int:
        return len(self._ranges) - 1

    def try_descend(self, value) -> bool:
        depth = self.depth
        if depth >= self._arity:
            raise QueryError("cursor already at full depth")
        low, high = self._ranges[-1]
        if low >= high:
            return False
        prefix = self._rows[low][:depth] + (value,)
        new_low = bisect.bisect_left(self._rows, prefix, low, high)
        new_high = bisect.bisect_right(self._rows, prefix + (_Top(),),
                                       new_low, high)
        if new_low >= new_high:
            return False
        self._ranges.append((new_low, new_high))
        return True

    def ascend(self) -> None:
        if len(self._ranges) == 1:
            raise QueryError("cursor.ascend above the root")
        self._ranges.pop()

    def child_values(self):
        depth = self.depth
        if depth >= self._arity:
            raise QueryError("cursor at full depth has no children")
        low, high = self._ranges[-1]
        while low < high:
            value = self._rows[low][depth]
            yield value
            low = bisect.bisect_right(self._rows,
                                      self._rows[low][:depth] + (value, _Top()),
                                      low, high)

    def count(self) -> int:
        low, high = self._ranges[-1]
        return high - low


class SortedTrieBatchCursor(SyncedBatchCursor):
    """Vectorized :class:`~repro.indexes.base.BatchCursor` over the sorted array.

    A node is a half-open row range sharing the bound prefix; descending is
    two ``np.searchsorted`` calls on the next column's range slice (the
    galloping of :class:`SortedTrieCursor`, batched), ``candidates`` is one
    ``np.unique`` over the slice, and ``probe_many`` is one vectorized
    binary search of the whole candidate vector against the cached
    children array.  Exact at every depth.
    """

    __slots__ = ("_columns", "_arity")

    def __init__(self, trie: SortedTrie):
        self._columns = trie.columns()
        self._arity = trie.arity
        rows = trie.rows
        super().__init__((0, len(rows)))

    def _descend_frame(self, frame, depth: int, value):
        if depth >= self._arity:
            raise QueryError("batch cursor already at full depth")
        low, high = frame
        if low >= high:
            return None
        window = self._columns[depth][low:high]
        new_low = low + int(np.searchsorted(window, value, side="left"))
        new_high = low + int(np.searchsorted(window, value, side="right"))
        if new_low >= new_high:
            return None
        return new_low, new_high

    def _children_array(self, frame, depth: int) -> np.ndarray:
        if depth >= self._arity:
            raise QueryError("batch cursor at full depth has no children")
        low, high = frame
        return np.unique(self._columns[depth][low:high])

    def _frame_count(self, frame, depth: int) -> int:
        low, high = frame
        return high - low
