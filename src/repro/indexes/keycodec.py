"""Order-preserving byte encoding of tuples for radix structures.

ART, the HAT-trie and SuRF all operate on byte strings.  To store relational
tuples in them we need an encoding with two properties:

1. **Order preservation** — encoded bytes compare (memcmp-style) in the
   same order as the original tuples, so range/prefix scans are correct.
2. **Prefix alignment** — the encoding of the first ``l`` components of a
   tuple is a byte-prefix of the encoding of the whole tuple, so an
   attribute-level prefix lookup becomes a byte-level prefix lookup.

Integers are encoded as a tag byte plus 8 big-endian bytes with the sign
bit flipped (the classic bias trick), so negative < positive holds
bytewise.  Strings are encoded as a tag byte plus NUL-escaped UTF-8 with a
``00 00`` terminator (the FoundationDB tuple-layer escape): embedded zero
bytes become ``00 FF``, which keeps the terminator unambiguous and the
ordering intact.  Type tags keep heterogeneous columns deterministic
(ints sort before strings).
"""

from __future__ import annotations

from repro.errors import SchemaError

_INT_TAG = b"\x01"
_STR_TAG = b"\x02"
_INT_BIAS = 1 << 63
_INT_LIMIT = 1 << 63


def encode_component(value: object) -> bytes:
    """Encode one tuple component to self-delimiting, order-preserving bytes."""
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        if not -_INT_LIMIT <= value < _INT_LIMIT:
            raise SchemaError(f"integer {value} outside encodable 64-bit range")
        return _INT_TAG + (value + _INT_BIAS).to_bytes(8, "big")
    if isinstance(value, str):
        raw = value.encode("utf-8").replace(b"\x00", b"\x00\xff")
        return _STR_TAG + raw + b"\x00\x00"
    raise SchemaError(f"cannot byte-encode component of type {type(value)!r}")


def encode_tuple(row: tuple) -> bytes:
    """Concatenated component encodings; prefixes align with tuple prefixes."""
    return b"".join(encode_component(value) for value in row)


def decode_tuple(data: bytes) -> tuple:
    """Inverse of :func:`encode_tuple` (used by tests and SuRF leaves)."""
    values = []
    position = 0
    size = len(data)
    while position < size:
        tag = data[position:position + 1]
        position += 1
        if tag == _INT_TAG:
            word = int.from_bytes(data[position:position + 8], "big")
            values.append(word - _INT_BIAS)
            position += 8
        elif tag == _STR_TAG:
            chunks = []
            while True:
                zero = data.index(b"\x00", position)
                if data[zero + 1:zero + 2] == b"\xff":  # escaped NUL
                    chunks.append(data[position:zero] + b"\x00")
                    position = zero + 2
                    continue
                chunks.append(data[position:zero])
                position = zero + 2  # skip the 00 00 terminator
                break
            values.append(b"".join(chunks).decode("utf-8"))
        else:
            raise SchemaError(f"bad type tag {tag!r} at offset {position - 1}")
    return tuple(values)


def encoded_int_width() -> int:
    """Bytes one encoded integer occupies (tag + payload)."""
    return 9
