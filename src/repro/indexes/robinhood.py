"""Robin Hood open-addressing map (the paper's "Tessil Robin Hood Fast Hash Map").

Robin Hood hashing [Celis et al., FOCS'85; §6 of the paper] keeps probe
chains short and *uniform*: on insertion, if the incoming entry has probed
further from its home slot than the entry currently occupying a slot (its
"probe sequence length", PSL), the two swap — the incoming rich entry
"steals from the poor".  Deletion uses backward shifting instead of
tombstones, so lookups can terminate as soon as they see an entry whose PSL
is smaller than the probe distance.

Used in the study as the second point-lookup-only baseline; also reused as
the per-level hash table of the hierarchical hash map.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any, ClassVar

from repro.core.hashing import hash_tuple
from repro.indexes.base import PointIndex

_MAX_LOAD = 0.8


class RobinHoodMap:
    """A generic Robin Hood hash map from hashable keys to values.

    This is the reusable engine; :class:`RobinHoodTupleIndex` adapts it to
    the :class:`~repro.indexes.base.TupleIndex` protocol and the
    hierarchical hash map stacks instances of it per level.
    """

    __slots__ = ("_capacity", "_keys", "_values", "_psl", "_size")

    def __init__(self, initial_capacity: int = 8):
        capacity = 8
        while capacity < initial_capacity:
            capacity <<= 1
        self._capacity = capacity
        self._keys: list[Any] = [None] * capacity
        self._values: list[Any] = [None] * capacity
        self._psl = [-1] * capacity  # -1 marks an empty slot
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: object) -> bool:
        return self._find(key) >= 0

    def get(self, key, default=None):
        """Value for ``key``, or ``default`` when absent."""
        slot = self._find(key)
        return self._values[slot] if slot >= 0 else default

    def __getitem__(self, key):
        slot = self._find(key)
        if slot < 0:
            raise KeyError(key)
        return self._values[slot]

    def put(self, key, value) -> None:
        """Insert or overwrite ``key``."""
        if (self._size + 1) > self._capacity * _MAX_LOAD:
            self._grow()
        self._insert_displacing(key, value)

    def setdefault(self, key, default):
        """Return ``key``'s value, inserting ``default`` first if absent."""
        slot = self._find(key)
        if slot >= 0:
            return self._values[slot]
        self.put(key, default)
        return default

    def delete(self, key) -> bool:
        """Remove ``key`` with backward-shift deletion; True if removed."""
        slot = self._find(key)
        if slot < 0:
            return False
        mask = self._capacity - 1
        current = slot
        while True:
            nxt = (current + 1) & mask
            if self._psl[nxt] <= 0:  # empty, or already in its home slot
                self._keys[current] = None
                self._values[current] = None
                self._psl[current] = -1
                break
            self._keys[current] = self._keys[nxt]
            self._values[current] = self._values[nxt]
            self._psl[current] = self._psl[nxt] - 1
            current = nxt
        self._size -= 1
        return True

    def items(self) -> Iterator[tuple]:
        """All (key, value) pairs, in slot order."""
        for key, value, psl in zip(self._keys, self._values, self._psl):
            if psl >= 0:
                yield key, value

    def keys(self) -> Iterator:
        """All keys, in slot order."""
        for key, _, psl in zip(self._keys, self._values, self._psl):
            if psl >= 0:
                yield key

    def values(self) -> Iterator:
        """All values, in slot order."""
        for _, value, psl in zip(self._keys, self._values, self._psl):
            if psl >= 0:
                yield value

    @property
    def capacity(self) -> int:
        return self._capacity

    def max_psl(self) -> int:
        """Longest probe chain currently in the table (tested invariantly)."""
        return max((p for p in self._psl if p >= 0), default=0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _hash(key) -> int:
        if isinstance(key, tuple):
            return hash_tuple(key)
        return hash_tuple((key,))

    def _find(self, key) -> int:
        mask = self._capacity - 1
        slot = self._hash(key) & mask
        distance = 0
        while True:
            psl = self._psl[slot]
            if psl < 0 or psl < distance:
                return -1  # Robin Hood early termination
            if self._keys[slot] == key:
                return slot
            slot = (slot + 1) & mask
            distance += 1

    def _insert_displacing(self, key, value) -> None:
        mask = self._capacity - 1
        slot = self._hash(key) & mask
        psl = 0
        while True:
            existing_psl = self._psl[slot]
            if existing_psl < 0:
                self._keys[slot] = key
                self._values[slot] = value
                self._psl[slot] = psl
                self._size += 1
                return
            if self._keys[slot] == key:
                self._values[slot] = value
                return
            if existing_psl < psl:  # steal from the rich
                key, self._keys[slot] = self._keys[slot], key
                value, self._values[slot] = self._values[slot], value
                psl, self._psl[slot] = existing_psl, psl
            slot = (slot + 1) & mask
            psl += 1

    def _grow(self) -> None:
        entries = list(self.items())
        self._capacity *= 2
        self._keys = [None] * self._capacity
        self._values = [None] * self._capacity
        self._psl = [-1] * self._capacity
        self._size = 0
        for key, value in entries:
            self._insert_displacing(key, value)


class RobinHoodTupleIndex(PointIndex):
    """Tuple index over :class:`RobinHoodMap` (point lookups only)."""

    NAME: ClassVar[str] = "robinhood"

    def __init__(self, arity: int, initial_capacity: int = 8):
        super().__init__(arity)
        self._map = RobinHoodMap(initial_capacity)

    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        before = len(self._map)
        self._map.put(row, True)
        self._size += len(self._map) - before

    def contains(self, row: tuple) -> bool:
        return self._check_row(row) in self._map

    def memory_usage(self) -> int:
        """Design footprint: key words + 2 B PSL counter per slot."""
        return self._map.capacity * (8 * self.arity + 2)
