"""SuRF — the Fast Succinct Trie (Zhang et al., SIGMOD'18).

SuRF encodes a trie in LOUDS-Sparse form: three parallel, bit/byte-level
arrays in level order —

* ``labels``    — one byte per trie edge;
* ``has_child`` — one bit per edge: 1 if the edge leads to an inner node,
  0 if the key terminates (a leaf edge);
* ``louds``     — one bit per edge: 1 iff the edge is the *first* edge of
  its node (the node-boundary marker).

Navigation needs only rank/select over those bitvectors (see
:mod:`repro.indexes.bitvector`): for an edge at position ``p``,

* child node's first edge = ``select1(louds, rank1(has_child, p + 1) + 1)``,
* leaf-value slot          = ``p - rank1(has_child, p)``.

Like the real SuRF, keys are **truncated** at the shallowest depth that
uniquely distinguishes them, and each leaf stores a configurable suffix:
``"none"`` (pure prefix filter), ``"hash"`` (a few hash bits), or
``"real"`` (the next key bytes).  Point lookup is therefore *one-sided
approximate*: no false negatives, tunable false positives — exactly the
filter semantics of the original.  And as in the paper's study (§5.4), the
structure is excluded from exact prefix operations: it advertises
``SUPPORTS_PREFIX = False`` and offers only :meth:`approx_count_prefix`.

SuRF is a static structure; inserts stage rows and the succinct arrays are
(re)built lazily on first query.  The paper's build-time measurements
include exactly this construction cost, so :meth:`build` finalizes eagerly.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.hashing import hash_key
from repro.errors import ConfigurationError
from repro.indexes.base import PointIndex
from repro.indexes.bitvector import BitVector, BitVectorBuilder
from repro.indexes.keycodec import encode_tuple

_SUFFIX_MODES = ("none", "hash", "real")


class SuccinctRangeFilter(PointIndex):
    """LOUDS-Sparse succinct trie with truncated keys and leaf suffixes."""

    NAME: ClassVar[str] = "surf"

    def __init__(self, arity: int, suffix_mode: str = "hash", suffix_bytes: int = 1):
        super().__init__(arity)
        if suffix_mode not in _SUFFIX_MODES:
            raise ConfigurationError(
                f"suffix_mode must be one of {_SUFFIX_MODES}, got {suffix_mode!r}"
            )
        self._suffix_mode = suffix_mode
        self._suffix_bytes = suffix_bytes
        self._pending: list[bytes] = []
        self._frozen = False
        self._labels = b""
        self._has_child: BitVector | None = None
        self._louds: BitVector | None = None
        self._suffixes: list[bytes] = []
        self._leaf_count = 0

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        self._pending.append(encode_tuple(row))
        self._frozen = False
        self._size += 1  # distinct-ness resolved at freeze; see _freeze

    def build(self, rows) -> None:
        super().build(rows)
        self._freeze()

    def _freeze(self) -> None:
        """Construct the LOUDS-Sparse arrays from the staged keys."""
        keys = sorted(set(self._pending))
        self._pending = keys  # keep canonical staging for future rebuilds
        self._size = len(keys)
        labels = bytearray()
        has_child = BitVectorBuilder()
        louds = BitVectorBuilder()
        suffixes: list[bytes] = []

        # Level-order construction over groups of keys sharing a prefix.
        # Each work item is (depth, key_slice); a slice of one key is a
        # leaf edge (truncation point), larger slices become inner edges.
        from collections import deque

        queue: deque[tuple[int, int, int]] = deque()
        if keys:
            queue.append((0, 0, len(keys)))
        while queue:
            depth, start, stop = queue.popleft()
            # partition keys[start:stop] by the byte at `depth`
            index = start
            first_edge = True
            while index < stop:
                byte = keys[index][depth]
                run_end = index
                while run_end < stop and keys[run_end][depth] == byte:
                    run_end += 1
                labels.append(byte)
                louds.append(first_edge)
                first_edge = False
                is_single = (run_end - index == 1)
                key_ends_here = (len(keys[index]) == depth + 1)
                if is_single or key_ends_here:
                    # Truncate: a unique key (or fully-consumed key) ends.
                    # Full keys are fixed-arity encodings, so key_ends_here
                    # implies the whole group is one identical key.
                    has_child.append(False)
                    suffixes.append(self._make_suffix(keys[index], depth + 1))
                else:
                    has_child.append(True)
                    queue.append((depth + 1, index, run_end))
                index = run_end

        self._labels = bytes(labels)
        self._has_child = has_child.freeze()
        self._louds = louds.freeze()
        self._suffixes = suffixes
        self._leaf_count = len(suffixes)
        self._frozen = True

    def _make_suffix(self, key: bytes, depth: int) -> bytes:
        if self._suffix_mode == "none":
            return b""
        if self._suffix_mode == "hash":
            return (hash_key(key) & ((1 << (8 * self._suffix_bytes)) - 1)).to_bytes(
                self._suffix_bytes, "little")
        return key[depth:depth + self._suffix_bytes]

    def _ensure_frozen(self) -> None:
        if not self._frozen:
            self._freeze()

    # ------------------------------------------------------------------
    # Navigation primitives (the SuRF paper's formulas)
    # ------------------------------------------------------------------
    def _node_range(self, node: int) -> tuple[int, int]:
        """Edge positions [start, stop) of node number ``node`` (1-indexed)."""
        start = self._louds.select1(node)
        if node + 1 <= self._louds.ones:
            stop = self._louds.select1(node + 1)
        else:
            stop = len(self._labels)
        return start, stop

    def _child_node(self, edge_position: int) -> int:
        """Node number of the child reached through inner edge ``edge_position``."""
        return self._has_child.rank1(edge_position + 1) + 1

    def _leaf_slot(self, edge_position: int) -> int:
        """Suffix-array slot of leaf edge ``edge_position``."""
        return edge_position - self._has_child.rank1(edge_position)

    def _find_edge(self, node: int, byte: int) -> int:
        """Edge position of ``byte`` within ``node``; -1 if absent."""
        start, stop = self._node_range(node)
        # labels within a node are sorted: binary search
        low, high = start, stop
        while low < high:
            middle = (low + high) // 2
            if self._labels[middle] < byte:
                low = middle + 1
            else:
                high = middle
        if low < stop and self._labels[low] == byte:
            return low
        return -1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, row: tuple) -> bool:
        """Filter semantics: False is definite, True may be a false positive."""
        row = self._check_row(row)
        self._ensure_frozen()
        if self._leaf_count == 0:
            return False
        key = encode_tuple(row)
        node = 1
        depth = 0
        while depth < len(key):
            edge = self._find_edge(node, key[depth])
            if edge < 0:
                return False
            if not self._has_child[edge]:
                return self._check_suffix(edge, key, depth + 1)
            node = self._child_node(edge)
            depth += 1
        return False  # ran out of key inside inner levels: impossible for full keys

    def _check_suffix(self, edge: int, key: bytes, depth: int) -> bool:
        stored = self._suffixes[self._leaf_slot(edge)]
        if self._suffix_mode == "none":
            return True
        if self._suffix_mode == "hash":
            expected = (hash_key(key) & ((1 << (8 * self._suffix_bytes)) - 1)).to_bytes(
                self._suffix_bytes, "little")
            return stored == expected
        return stored == key[depth:depth + self._suffix_bytes]

    def approx_count_prefix(self, prefix: tuple) -> int:
        """Approximate count of keys below ``prefix`` (leaf count in subtree).

        Truncation makes this a lower bound that is exact whenever no two
        keys were truncated at the same edge — matching the paper's note
        that SuRF "only provides approximate count-prefix" (§5.4).
        """
        prefix = self._check_prefix(tuple(prefix))
        self._ensure_frozen()
        if self._leaf_count == 0:
            return 0
        encoded = encode_tuple(prefix)
        node = 1
        for depth in range(len(encoded)):
            edge = self._find_edge(node, encoded[depth])
            if edge < 0:
                return 0
            if not self._has_child[edge]:
                return 1  # truncated: at least one key below
            node = self._child_node(edge)
        return self._count_leaves(node)

    def _count_leaves(self, node: int) -> int:
        total = 0
        stack = [node]
        while stack:
            current = stack.pop()
            start, stop = self._node_range(current)
            for edge in range(start, stop):
                if self._has_child[edge]:
                    stack.append(self._child_node(edge))
                else:
                    total += 1
        return total

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def leaf_count(self) -> int:
        self._ensure_frozen()
        return self._leaf_count

    def memory_usage(self) -> int:
        """Design footprint: labels + 2 bitvectors + suffixes (succinct!)."""
        self._ensure_frozen()
        total = len(self._labels)
        total += self._has_child.memory_usage()
        total += self._louds.memory_usage()
        total += sum(len(s) for s in self._suffixes)
        return total
