"""HAT-trie (Askitis & Sinha '07 — the paper's "Tessil HAT-Trie" baseline).

A HAT-trie is a *burst trie* tuned for caches: the upper part of the
structure is a conventional radix trie, but subtrees holding few keys are
collapsed into flat hash buckets ("array hash tables") storing raw key
suffixes.  A bucket that grows past a burst threshold *bursts*: it is
replaced by a trie node whose children are new buckets, partitioned by the
suffixes' first byte.

The cache-conscious payoff is that most of the key bytes live in dense
buckets rather than in pointer-linked trie nodes; the cost — which the
paper's evaluation repeatedly observes — is that bucket probes must compare
whole suffixes, so lookups do "a large number of key comparisons" (§5.6).

Tuples are byte-encoded with the order-preserving codec so attribute
prefixes align with byte prefixes.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import ClassVar

from repro.errors import ConfigurationError
from repro.indexes.base import TupleIndex
from repro.indexes.keycodec import encode_tuple

_DEFAULT_BURST = 64


class _Bucket:
    """A flat array-hash bucket mapping key suffixes to rows."""

    __slots__ = ("entries",)

    def __init__(self):
        self.entries: dict[bytes, tuple] = {}

    def __len__(self) -> int:
        return len(self.entries)


class _TrieNode:
    """A pure trie node: byte → child (bucket or node), plus terminal row."""

    __slots__ = ("children", "terminal_row")

    def __init__(self):
        self.children: dict[int, _TrieNode | _Bucket] = {}
        self.terminal_row: tuple | None = None


class HatTrie(TupleIndex):
    """Burst trie over byte-encoded tuples with hash-array leaf buckets."""

    NAME: ClassVar[str] = "hattrie"

    def __init__(self, arity: int, burst_threshold: int = _DEFAULT_BURST):
        super().__init__(arity)
        if burst_threshold < 2:
            raise ConfigurationError(
                f"burst threshold must be >= 2, got {burst_threshold}"
            )
        self._burst = burst_threshold
        self._root: _TrieNode | _Bucket = _Bucket()

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, row: tuple) -> None:
        row = self._check_row(row)
        key = encode_tuple(row)
        node = self._root
        depth = 0
        parent: _TrieNode | None = None
        parent_byte = -1
        while isinstance(node, _TrieNode):
            if depth == len(key):
                if node.terminal_row is None:
                    node.terminal_row = row
                    self._size += 1
                return
            byte = key[depth]
            child = node.children.get(byte)
            if child is None:
                child = _Bucket()
                node.children[byte] = child
            parent, parent_byte = node, byte
            node = child
            depth += 1

        suffix = key[depth:]
        if suffix in node.entries:
            return  # duplicate
        node.entries[suffix] = row
        self._size += 1
        if len(node) > self._burst:
            burst_node = self._burst_bucket(node)
            if parent is None:
                self._root = burst_node
            else:
                parent.children[parent_byte] = burst_node

    def _burst_bucket(self, bucket: _Bucket) -> _TrieNode:
        """Replace an over-full bucket by a trie node over its first byte."""
        node = _TrieNode()
        for suffix, row in bucket.entries.items():
            if not suffix:
                node.terminal_row = row
                continue
            child = node.children.get(suffix[0])
            if child is None:
                child = _Bucket()
                node.children[suffix[0]] = child
            child.entries[suffix[1:]] = row
        return node

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def contains(self, row: tuple) -> bool:
        row = self._check_row(row)
        key = encode_tuple(row)
        node = self._root
        depth = 0
        while isinstance(node, _TrieNode):
            if depth == len(key):
                return node.terminal_row is not None
            node = node.children.get(key[depth])
            if node is None:
                return False
            depth += 1
        return key[depth:] in node.entries

    def prefix_lookup(self, prefix: tuple) -> Iterator[tuple]:
        prefix = self._check_prefix(tuple(prefix))
        encoded = encode_tuple(prefix)
        node = self._root
        depth = 0
        while isinstance(node, _TrieNode) and depth < len(encoded):
            node = node.children.get(encoded[depth])
            if node is None:
                return
            depth += 1
        if isinstance(node, _Bucket):
            remainder = encoded[depth:]
            for suffix, row in node.entries.items():
                if suffix.startswith(remainder):
                    yield row
            return
        yield from self._iter_subtree(node)

    def count_prefix(self, prefix: tuple) -> int:
        count = 0
        for _ in self.prefix_lookup(prefix):
            count += 1
        return count

    def _iter_subtree(self, node: _TrieNode) -> Iterator[tuple]:
        stack: list[_TrieNode | _Bucket] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, _Bucket):
                yield from current.entries.values()
                continue
            if current.terminal_row is not None:
                yield current.terminal_row
            stack.extend(current.children.values())

    def __iter__(self) -> Iterator[tuple]:
        if isinstance(self._root, _Bucket):
            return iter(self._root.entries.values())
        return self._iter_subtree(self._root)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def bucket_count(self) -> int:
        """Number of leaf buckets (structure tests check bursting)."""
        count = 0
        stack: list[_TrieNode | _Bucket] = [self._root]
        while stack:
            current = stack.pop()
            if isinstance(current, _Bucket):
                count += 1
            else:
                stack.extend(current.children.values())
        return count

    def trie_depth(self) -> int:
        """Maximum trie-node depth above any bucket."""
        best = 0
        stack: list[tuple[_TrieNode | _Bucket, int]] = [(self._root, 0)]
        while stack:
            current, depth = stack.pop()
            if isinstance(current, _Bucket):
                best = max(best, depth)
            else:
                for child in current.children.values():
                    stack.append((child, depth + 1))
        return best

    def memory_usage(self) -> int:
        """Design footprint: trie nodes at pointer granularity + bucket bytes."""
        total = 0
        stack: list[_TrieNode | _Bucket] = [self._root]
        while stack:
            current = stack.pop()
            if isinstance(current, _Bucket):
                total += 16  # bucket header
                for suffix in current.entries:
                    total += len(suffix) + 8 * self.arity
                continue
            total += 16 + len(current.children) * (1 + 8)
            stack.extend(current.children.values())
        return total
