"""Fig 17 — Sonic bucket-size sweep (§5.10).

The paper's knob couples bucket size with overallocation: "large bucket
size leads to a higher overallocation factor but reduces the operation
time".  The sweep therefore grows capacity with the bucket (otherwise a
fixed capacity would shrink the bucket *count* and force allocator
sharing — more patching, the opposite of the intended trade).  Expected
shape: patching falls and lookups get cheaper with bucket size, at a
growing memory/build cost.
"""

import pytest

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import print_series
from repro.core import SonicConfig, SonicIndex

ROWS = 4000
COLUMNS = 4
BUCKET_SIZES = [2, 4, 8, 16, 32]


def build(bucket_size):
    rows = bench_rows(ROWS, COLUMNS, seed=17, domain=40)
    # the paper's coupling: bigger buckets come with more overallocation
    overallocation = max(2.0, bucket_size / 2)
    config = SonicConfig.for_tuples(len(rows), bucket_size=bucket_size,
                                    overallocation=overallocation)
    index = SonicIndex(COLUMNS, config)
    index.build(rows)
    return index, rows


@pytest.mark.parametrize("bucket_size", [2, 8, 32])
def test_bench_fig17_build(benchmark, bucket_size):
    benchmark.pedantic(build, args=(bucket_size,), rounds=2, iterations=1)


def test_report_fig17(benchmark):
    def body():
        build_ms, point_ms, prefix_ms, patch_rate = [], [], [], []
        for bucket_size in BUCKET_SIZES:
            build_ms.append(round(measure_seconds(
                lambda: build(bucket_size), repeats=2) * 1e3, 2))
            index, rows = build(bucket_size)
            point_ms.append(round(measure_seconds(
                lambda: [index.contains(row) for row in rows[:800]],
                repeats=2) * 1e3, 2))
            prefix_ms.append(round(measure_seconds(
                lambda: [list(index.prefix_lookup(row[:2]))
                         for row in rows[:300]],
                repeats=2) * 1e3, 2))
            stats = index.patch_stats()
            patch_rate.append(round(max(stats.values()), 3) if stats else 0.0)
        print_series("Fig 17: Sonic operation cost vs bucket size",
                     "bucket_size", BUCKET_SIZES,
                     {"build_ms": build_ms, "point_ms": point_ms,
                      "prefix_ms": prefix_ms, "patched_frac": patch_rate})
        # §5.10 shape: bigger buckets reduce patching
        assert patch_rate[-1] <= patch_rate[0]
        return {"bucket_size": BUCKET_SIZES, "build_ms": build_ms,
                "point_ms": point_ms, "prefix_ms": prefix_ms,
                "patched_frac": patch_rate}

    run_report(benchmark, body, "fig17")
