"""Fig 13 — build performance for variable-length (string) keys (§5.12).

Expected shape: Sonic is the *worst* performer on raw variable-length
strings (whole-key comparisons at every level); byte-oriented tries
(ART, HAT-trie) handle them natively.  With dictionary encoding (the
paper's recommended fix) Sonic performs as on integers — the report
includes that column to close the loop.
"""

import pytest

from conftest import measure_seconds, run_report
from repro.bench import make_sized_index, print_series
from repro.data import string_table

ROWS = 2500
COLUMNS = 3
INDEXES = ("sonic", "hashset", "btree", "art", "hattrie", "hiermap")


def string_rows():
    return string_table("strings", ROWS, COLUMNS, key_length=14, seed=13).rows


def dictionary_encode(rows):
    """The paper's remedy: map strings to dense integer codes."""
    codes: dict[str, int] = {}
    encoded = []
    for row in rows:
        encoded.append(tuple(codes.setdefault(value, len(codes))
                             for value in row))
    return encoded


def build(name, rows):
    index = make_sized_index(name, COLUMNS, len(rows))
    index.build(rows)
    return index


@pytest.mark.parametrize("name", INDEXES)
def test_bench_fig13(benchmark, name):
    rows = string_rows()
    benchmark.pedantic(build, args=(name, rows), rounds=3, iterations=1)


def test_report_fig13(benchmark):
    def body():
        rows = string_rows()
        encoded = dictionary_encode(rows)
        raw = {}
        dictionary = {}
        for name in INDEXES:
            raw[name] = round(measure_seconds(
                lambda: build(name, rows), repeats=2) * 1e3, 2)
            dictionary[name] = round(measure_seconds(
                lambda: build(name, encoded), repeats=2) * 1e3, 2)
        table_rows = [
            {"index": name, "strings_ms": raw[name],
             "dict_encoded_ms": dictionary[name]}
            for name in INDEXES
        ]
        from repro.bench import print_table
        print_table("Fig 13: build time, variable-length keys", table_rows)
        # §5.12 shape: dictionary encoding must bring Sonic back in line
        assert dictionary["sonic"] < raw["sonic"]
        return {"raw_ms": raw, "dict_ms": dictionary}

    run_report(benchmark, body, "fig13")
