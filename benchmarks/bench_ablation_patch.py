"""Ablation — Sonic's patch policy (DESIGN.md §4).

Compares the shipped design (patch only spilled buckets, null keys for
residents) against the ablated extremes:

* *never-patch fidelity check*: a generously overallocated index where
  patching (almost) never triggers — the fast path the design optimizes;
* *always-patch*: every bucket force-patched, every lookup paying the
  patch-key comparison — what Sonic would cost if it replicated parent
  keys unconditionally instead of "disambiguating only when rare" (§3.3).
"""

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import print_table
from repro.core import SonicConfig, SonicIndex

ROWS = 4000
COLUMNS = 4


def build(overallocation, force_patch):
    rows = bench_rows(ROWS, COLUMNS, seed=31, domain=40)
    config = SonicConfig.for_tuples(len(rows), overallocation=overallocation)
    index = SonicIndex(COLUMNS, config)
    index.build(rows)
    if force_patch:
        for level in range(1, index.num_levels):
            index.force_patch_fraction(level, 1.0)
    return index, rows


def lookup_cost(index, rows):
    return measure_seconds(
        lambda: [index.contains(row) for row in rows[:1000]], repeats=2)


def test_bench_ablation_patch_baseline(benchmark):
    index, rows = build(2.0, force_patch=False)
    benchmark(lambda: [index.contains(row) for row in rows[:1000]])


def test_bench_ablation_patch_always(benchmark):
    index, rows = build(2.0, force_patch=True)
    benchmark(lambda: [index.contains(row) for row in rows[:1000]])


def test_report_ablation_patch(benchmark):
    def body():
        variants = [
            ("rare-patch (shipped, OF=2)", 2.0, False),
            ("almost-no-patch (OF=6)", 6.0, False),
            ("always-patch", 2.0, True),
        ]
        rows_out = []
        for label, overallocation, force in variants:
            index, rows = build(overallocation, force)
            stats = index.patch_stats()
            rows_out.append({
                "variant": label,
                "lookup_ms": round(lookup_cost(index, rows) * 1e3, 2),
                "patched_frac": round(max(stats.values()), 3) if stats else 0,
                "memory_bytes": index.memory_usage(),
            })
        print_table("Ablation: patch policy", rows_out)
        # the design claim: rare patching must not cost much more than the
        # (memory-hungry) almost-never-patching configuration
        shipped = rows_out[0]["lookup_ms"]
        rare = rows_out[1]["lookup_ms"]
        assert shipped < 3 * rare
        return {"rows": rows_out}

    run_report(benchmark, body, "ablation_patch")
