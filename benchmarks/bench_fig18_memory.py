"""Fig 18 — memory usage by index (§5.9).

Design-byte footprints of every structure over the same table, plus the
§3.5 analytic model for Sonic.  Expected shape: Sonic's footprint is a
constant factor of the data size; SuRF is the most compact (succinct);
the hierarchical map pays per-table overheads.
"""

import pytest

from conftest import bench_rows, run_report
from repro.bench import BUILD_AND_POINT_INDEXES, make_sized_index, print_table
from repro.core import sonic_space_estimate

ROWS = 5000
COLUMNS = 4


def build(name):
    rows = bench_rows(ROWS, COLUMNS, seed=18)
    index = make_sized_index(name, COLUMNS, len(rows))
    index.build(rows)
    return index


@pytest.mark.parametrize("name", ["sonic", "surf", "hiermap"])
def test_bench_fig18(benchmark, name):
    index = build(name)
    benchmark(index.memory_usage)


def test_report_fig18(benchmark):
    def body():
        data_bytes = ROWS * COLUMNS * 8
        rows = []
        usage = {}
        for name in BUILD_AND_POINT_INDEXES:
            index = build(name)
            usage[name] = index.memory_usage()
            rows.append({
                "index": name,
                "bytes": usage[name],
                "x_data": round(usage[name] / data_bytes, 2),
            })
        model = sonic_space_estimate(ROWS, [8] * COLUMNS, overallocation=2.0,
                                     include_counters=True)
        rows.append({"index": "sonic_model_§3.5", "bytes": model,
                     "x_data": round(model / data_bytes, 2)})
        rows.sort(key=lambda row: row["bytes"])
        print_table(f"Fig 18: memory usage ({ROWS} rows x {COLUMNS} cols, "
                    f"data = {data_bytes} B)", rows)
        # Fig 18 shape: Sonic is a constant factor of data size; the
        # hierarchical map pays per-table overhead above it
        assert usage["sonic"] < usage["hiermap"]
        assert usage["surf"] < data_bytes
        assert usage["sonic"] < 8 * data_bytes
        return {"usage": usage, "model": model, "data_bytes": data_bytes}

    run_report(benchmark, body, "fig18")
