"""Table 1 — triangle counting on (synthetic stand-ins for) the SNAP
datasets plus the JOB-light relational workload (§5.16).

Columns mirror the paper: BJ (binary join), GJ with BTree / HAT-trie /
Sonic / hierarchical map, HTJ (Hash-Trie Join); EmptyHeaded and Umbra are
not rebuilt (DESIGN.md §1) and appear as "n/a".  Expected shape:

* graphs: GJ+Sonic fastest in most columns, HTJ close;
* JOB: the binary join wins ("this is not a worst-case situation").
"""

import pytest

import time

from conftest import measure_seconds, run_report
from repro.bench import print_table
from repro.data import (
    DATASETS,
    job_light_queries,
    load_snap_dataset,
    make_imdb,
    triangle_count_truth,
)
from repro.joins import join

SCALE = 0.15
TRIANGLE = "E1=E(a,b), E2=E(b,c), E3=E(c,a)"
CONTENDERS = {
    "BJ": dict(algorithm="binary"),
    "GJ_btree": dict(algorithm="generic", index="btree"),
    "GJ_hattrie": dict(algorithm="generic", index="hattrie"),
    "GJ_sonic": dict(algorithm="generic", index="sonic"),
    "GJ_hiermap": dict(algorithm="generic", index="hiermap"),
    "HTJ": dict(algorithm="hashtrie"),
}


def graph_source(name):
    edges = load_snap_dataset(name, scale=SCALE, seed=21)
    return edges, {"E1": edges, "E2": edges, "E3": edges}


@pytest.mark.parametrize("dataset", ["facebook", "wikivote"])
@pytest.mark.parametrize("contender", ["BJ", "GJ_sonic", "HTJ"])
def test_bench_table1_graph(benchmark, dataset, contender):
    _, source = graph_source(dataset)
    benchmark.pedantic(
        lambda: join(TRIANGLE, source, **CONTENDERS[contender]),
        rounds=1, iterations=1)


def run_job_workload(queries, options):
    total = 0
    for job in queries:
        total += join(job.query, job.relations, **options).count
    return total


def test_report_table1(benchmark):
    def body():
        rows = []
        for dataset in DATASETS:
            edges, source = graph_source(dataset)
            truth = triangle_count_truth(edges)
            row = {"workload": dataset, "edges": len(edges)}
            intermediates = {}
            for contender, options in CONTENDERS.items():
                start = time.perf_counter()
                result = join(TRIANGLE, source, **options)
                elapsed = time.perf_counter() - start
                assert result.count == truth, (dataset, contender)
                intermediates[contender] = result.metrics.intermediate_tuples
                row[contender] = round(elapsed * 1e3, 1)
            # paper shape, machine-independent: on every graph the WCOJ
            # candidate work is below the binary pipeline's intermediates
            assert intermediates["GJ_sonic"] <= intermediates["BJ"], dataset
            assert intermediates["HTJ"] <= intermediates["BJ"], dataset
            rows.append(row)

        catalog = make_imdb(400, seed=22)
        queries = job_light_queries(catalog, seed=23, max_satellites=2)
        job_row = {"workload": "JOB-light", "edges": catalog.total_rows()}
        reference = None
        for contender, options in CONTENDERS.items():
            start = time.perf_counter()
            total = run_job_workload(queries, options)
            elapsed = time.perf_counter() - start
            if reference is None:
                reference = total
            assert total == reference, contender
            job_row[contender] = round(elapsed * 1e3, 1)
        rows.append(job_row)

        print_table("Table 1: cycle counting + JOB-light runtimes (ms); "
                    "EH/Umbra not rebuilt (see DESIGN.md)", rows)

        # paper shape, graphs (wall clock, within tier): GJ_sonic keeps up
        # with the other pure-Python GJ backends; the per-dataset WCOJ-vs-
        # binary work comparison is asserted above.  (The paper's absolute
        # GJ_sonic-vs-BJ wall-clock gap does not transfer to Python — see
        # EXPERIMENTS.md.)
        graph_rows = rows[:-1]
        for row in graph_rows:
            assert row["GJ_sonic"] <= 2.0 * row["GJ_hattrie"], row
        # paper shape, JOB: the binary join beats every Generic Join
        # configuration (not a worst case).  Hash-Trie Join rides CPython's
        # C dict and can tie or edge out the binary pipeline here — an
        # implementation-tier artifact (EXPERIMENTS.md) — so the paper's
        # claim is asserted against the GJ family plus a near-parity check.
        gj_best = min(job_row[c] for c in CONTENDERS if c.startswith("GJ_"))
        assert job_row["BJ"] <= gj_best
        assert job_row["BJ"] <= 1.5 * min(job_row[c] for c in CONTENDERS)
        return {"rows": rows}

    run_report(benchmark, body, "table1")
