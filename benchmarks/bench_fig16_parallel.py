"""Fig 16 — parallel Sonic build: thread scaling and the NUMA cliff (§3.4.2,
§5.11).

Two components, per DESIGN.md's substitution policy:

* the *real* key-range-locked parallel build runs under threads (its
  correctness is covered in tests; the GIL hides speedup), reporting the
  measured contention profile;
* the deterministic :class:`ParallelBuildModel` converts a measured
  single-thread build time plus the lock-stripe configuration into the
  projected scaling curve the paper plots.
"""

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import print_series
from repro.core import ParallelSonicBuilder, SonicConfig, SonicIndex
from repro.hardware import ParallelBuildModel

ROWS = 6000
COLUMNS = 3
THREADS = [1, 2, 4, 8, 10, 12, 16, 20]
GRANULARITY = 8192


def sequential_build_seconds():
    rows = bench_rows(ROWS, COLUMNS, seed=16)
    config = SonicConfig.for_tuples(len(rows))

    def build():
        SonicIndex(COLUMNS, config).build(rows)

    return measure_seconds(build, repeats=3)


def test_bench_fig16_sequential_build(benchmark):
    rows = bench_rows(ROWS, COLUMNS, seed=16)
    config = SonicConfig.for_tuples(len(rows))
    benchmark.pedantic(lambda: SonicIndex(COLUMNS, config).build(rows),
                       rounds=3, iterations=1)


def test_bench_fig16_threaded_build(benchmark):
    rows = bench_rows(ROWS, COLUMNS, seed=16)
    config = SonicConfig.for_tuples(len(rows))

    def build():
        index = SonicIndex(COLUMNS, config)
        ParallelSonicBuilder(index, num_threads=4,
                             granularity=GRANULARITY).build(rows)

    benchmark.pedantic(build, rounds=2, iterations=1)


def test_report_fig16(benchmark):
    def body():
        base = sequential_build_seconds()
        rows = bench_rows(ROWS, COLUMNS, seed=16)
        config = SonicConfig.for_tuples(len(rows))
        index = SonicIndex(COLUMNS, config)
        builder = ParallelSonicBuilder(index, num_threads=4,
                                       granularity=GRANULARITY)
        builder.build(rows)
        local_stripes = builder.locks.stripes_per_level

        # The paper's levels hold 256M+ slots, so granularity 8192 yields
        # tens of thousands of stripes; our scaled-down build has only a
        # handful.  The scaling model is therefore evaluated at the
        # paper's stripe count (the measured local build supplies the
        # single-thread base time).
        paper_capacity = 512 * 1024 * 1024
        stripes = paper_capacity // GRANULARITY

        model = ParallelBuildModel()
        speedups = [round(model.speedup(threads, stripes), 2)
                    for threads in THREADS]
        projected_ms = [round(base * 1e3 / s, 2) for s in speedups]
        print_series(
            f"Fig 16: parallel build (1-thread measured {base*1e3:.1f} ms, "
            f"local stripes={local_stripes}, modelled at paper-scale "
            f"stripes={stripes}, granularity={GRANULARITY})",
            "threads", THREADS,
            {"model_speedup": speedups, "projected_build_ms": projected_ms})
        # Fig 16 shape: monotone within the socket, flattening beyond it
        within = speedups[:THREADS.index(10) + 1]
        assert within == sorted(within)
        per_thread_10 = speedups[THREADS.index(10)] / 10
        per_thread_20 = speedups[THREADS.index(20)] / 20
        assert per_thread_20 < per_thread_10
        return {"threads": THREADS, "speedup": speedups,
                "base_ms": base * 1e3}

    run_report(benchmark, body, "fig16")
