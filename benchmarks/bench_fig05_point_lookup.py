"""Fig 5 — point lookup time vs number of columns (§5.6).

Ten thousand lookups, half misses.  Expected shape: flat hash structures
(robinhood, hashset) fastest; Sonic close at 2 columns, degrading with
levels; BTree/HAT-trie slow from pointer chasing and key comparisons.
"""

import pytest

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import BUILD_AND_POINT_INDEXES, make_sized_index, print_series
from repro.data import lookup_workload
from repro.storage import Relation

ROWS = 4000
PROBES = 2000
COLUMNS = [2, 3, 4, 6, 8]


def prepared(name, columns):
    rows = bench_rows(ROWS, columns, seed=5)
    index = make_sized_index(name, columns, len(rows))
    index.build(rows)
    relation = Relation("bench", tuple(f"c{i}" for i in range(columns)), rows)
    probes = lookup_workload(relation, PROBES, seed=55)
    return index, probes


def run_lookups(index, probes):
    hits = 0
    for probe in probes:
        if index.contains(probe):
            hits += 1
    return hits


@pytest.mark.parametrize("columns", [2, 8])
@pytest.mark.parametrize("name", BUILD_AND_POINT_INDEXES)
def test_bench_fig05(benchmark, name, columns):
    index, probes = prepared(name, columns)
    benchmark(run_lookups, index, probes)


def test_report_fig05(benchmark):
    def body():
        series = {name: [] for name in BUILD_AND_POINT_INDEXES}
        for columns in COLUMNS:
            for name in BUILD_AND_POINT_INDEXES:
                index, probes = prepared(name, columns)
                seconds = measure_seconds(lambda: run_lookups(index, probes),
                                          repeats=2)
                series[name].append(round(seconds * 1e3, 2))
        print_series(f"Fig 5: {PROBES} point lookups (ms) vs columns",
                     "columns", COLUMNS, series)
        # §5.6 shapes that survive Python constant factors (see
        # EXPERIMENTS.md for the BTree inversion): Sonic's two-column
        # special case beats the flat hash structures (single level, no
        # whole-tuple hashing), and SuRF's succinct navigation is the
        # slowest point lookup in the study.
        assert series["sonic"][0] <= series["hashset"][0]
        for position in range(len(COLUMNS)):
            slowest = max(series[name][position]
                          for name in BUILD_AND_POINT_INDEXES)
            assert series["surf"][position] == slowest
        return {"columns": COLUMNS, **series}

    run_report(benchmark, body, "fig05")
