"""Fig 8 — prefix lookup time vs prefix length (§5.8).

8-column table, prefix length swept 1–7, over the §5.2 workload (uniform
random keys, sparse domain).  The paper's own reading of this figure:
"since the data is almost uniformly distributed, the performance of all
indices do not change significantly by increasing the length of the
prefix" — flat series, with Sonic mildly preferring longer (more
determined) prefixes.  Small dense domains are deliberately avoided:
they collapse Sonic's patch-key disambiguation (values collide) and are
not this experiment's workload (the skew axis is Fig 9).
"""

import pytest

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import PREFIX_INDEXES, make_sized_index, print_series
from repro.data import prefix_workload
from repro.storage import Relation

ROWS = 2000
PROBES = 150
COLUMNS = 8
LENGTHS = [1, 2, 4, 6, 7]


_INDEX_CACHE: dict = {}


def prepared(name, length):
    rows = bench_rows(ROWS, COLUMNS, seed=8)
    if name not in _INDEX_CACHE:
        index = make_sized_index(name, COLUMNS, len(rows))
        index.build(rows)
        # single-threaded pytest-benchmark harness: memo, not shared state
        _INDEX_CACHE[name] = index  # repro: noqa[RA701]
    relation = Relation("bench", tuple(f"c{i}" for i in range(COLUMNS)), rows)
    probes = prefix_workload(relation, PROBES, prefix_length=length, seed=88)
    return _INDEX_CACHE[name], probes


def run_prefix_lookups(index, probes):
    matched = 0
    for probe in probes:
        for _ in index.prefix_lookup(probe):
            matched += 1
    return matched


@pytest.mark.parametrize("length", [1, 4, 7])
@pytest.mark.parametrize("name", PREFIX_INDEXES)
def test_bench_fig08(benchmark, name, length):
    index, probes = prepared(name, length)
    benchmark(run_prefix_lookups, index, probes)


def test_report_fig08(benchmark):
    def body():
        series = {name: [] for name in PREFIX_INDEXES}
        for length in LENGTHS:
            for name in PREFIX_INDEXES:
                index, probes = prepared(name, length)
                seconds = measure_seconds(
                    lambda: run_prefix_lookups(index, probes), repeats=2)
                series[name].append(round(seconds * 1e3, 2))
        print_series(f"Fig 8: {PROBES} prefix lookups (ms) vs prefix length "
                     f"({COLUMNS}-column table)", "prefix_len", LENGTHS, series)
        # §5.8 shape: "Sonic performs better when the length of the
        # prefix is longer" — short prefixes leave more unbound levels to
        # enumerate — while the tree/trie structures stay near-flat on
        # uniform data (the paper's stated observation)
        assert series["sonic"][-1] < series["sonic"][0]
        for name in ("btree", "art", "hattrie", "hiermap"):
            values = series[name]
            assert max(values) < 8 * max(min(values), 0.01), (name, values)
        return {"prefix_len": LENGTHS, **series}

    run_report(benchmark, body, "fig08")
