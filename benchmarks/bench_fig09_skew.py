"""Fig 9 — prefix lookup time under skew (Zipf α 0 → 1, §5.9).

8-column table, prefix length 4.  Expected shape: skew hurts Sonic and
HAT-trie (long chains of key comparisons in heavy-hitter leaves) more
than the trees; larger Sonic buckets mitigate (see Fig 17).
"""

import pytest

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import PREFIX_INDEXES, make_sized_index, print_series
from repro.data import prefix_workload
from repro.storage import Relation

ROWS = 2000
PROBES = 150
COLUMNS = 8
PREFIX_LENGTH = 4
ALPHAS = [0.0, 0.5, 1.0]


_INDEX_CACHE: dict = {}


def prepared(name, alpha):
    rows = bench_rows(ROWS, COLUMNS, alpha=alpha, seed=9, domain=60)
    if (name, alpha) not in _INDEX_CACHE:
        index = make_sized_index(name, COLUMNS, len(rows))
        index.build(rows)
        # single-threaded pytest-benchmark harness: memo, not shared state
        _INDEX_CACHE[(name, alpha)] = index  # repro: noqa[RA701]
    index = _INDEX_CACHE[(name, alpha)]
    relation = Relation("bench", tuple(f"c{i}" for i in range(COLUMNS)), rows)
    probes = prefix_workload(relation, PROBES, prefix_length=PREFIX_LENGTH,
                             seed=99)
    return index, probes


def run_prefix_lookups(index, probes):
    matched = 0
    for probe in probes:
        for _ in index.prefix_lookup(probe):
            matched += 1
    return matched


@pytest.mark.parametrize("alpha", [0.0, 1.0])
@pytest.mark.parametrize("name", PREFIX_INDEXES)
def test_bench_fig09(benchmark, name, alpha):
    index, probes = prepared(name, alpha)
    benchmark(run_prefix_lookups, index, probes)


def test_report_fig09(benchmark):
    def body():
        series = {name: [] for name in PREFIX_INDEXES}
        for alpha in ALPHAS:
            for name in PREFIX_INDEXES:
                index, probes = prepared(name, alpha)
                seconds = measure_seconds(
                    lambda: run_prefix_lookups(index, probes), repeats=2)
                series[name].append(round(seconds * 1e3, 2))
        print_series(f"Fig 9: {PROBES} prefix lookups (ms) vs Zipf alpha",
                     "alpha", ALPHAS, series)
        # §5.9 shape: high skew costs Sonic more than it costs the BTree
        sonic_growth = series["sonic"][-1] / max(series["sonic"][0], 1e-9)
        btree_growth = series["btree"][-1] / max(series["btree"][0], 1e-9)
        assert sonic_growth > btree_growth * 0.5  # soft check: skew visible
        return {"alpha": ALPHAS, **series}

    run_report(benchmark, body, "fig09")
