"""Fig 7 — count-prefix time vs number of columns (§5.7).

Sonic answers count-prefix from its prefix counters — O(prefix), however
many tuples match — while enumeration-based structures pay O(result).
Two measurements reproduce that claim:

* the paper-style wall-clock sweep over the §5.2 workload (sparse random
  keys; in Python the absolute ordering is tier-dominated, see
  EXPERIMENTS.md);
* a machine-independent check on dense data: Sonic's traced memory
  touches per count-prefix stay constant while the *results being
  counted* grow by orders of magnitude (its own prefix enumeration, the
  O(result) alternative, is the in-tier yardstick).
"""

import pytest

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import PREFIX_INDEXES, make_sized_index, print_series, print_table
from repro.core import SonicConfig, SonicIndex
from repro.data import prefix_workload
from repro.hardware import MemoryTracer
from repro.storage import Relation

ROWS = 4000
PROBES = 1500
COLUMNS = [2, 4, 6, 8]


def prepared(name, columns):
    rows = bench_rows(ROWS, columns, seed=7)
    index = make_sized_index(name, columns, len(rows))
    index.build(rows)
    relation = Relation("bench", tuple(f"c{i}" for i in range(columns)), rows)
    probes = prefix_workload(relation, PROBES, prefix_length=max(columns // 2, 1),
                             seed=77)
    return index, probes


def run_counts(index, probes):
    """Count-prefix mix; Sonic uses its raw O(prefix) counter.

    ``approx_count_prefix`` is the operation the paper benchmarks (§3.4.3:
    "count prefix operations are answered immediately using the prefix
    count value"); the library's default ``count_prefix`` additionally
    guarantees exactness by falling back to enumeration when probe chains
    may have merged, which is not what Fig 7 measures.
    """
    counter = getattr(index, "approx_count_prefix", index.count_prefix)
    total = 0
    for probe in probes:
        total += counter(probe)
    return total


@pytest.mark.parametrize("columns", [2, 8])
@pytest.mark.parametrize("name", PREFIX_INDEXES)
def test_bench_fig07(benchmark, name, columns):
    index, probes = prepared(name, columns)
    benchmark(run_counts, index, probes)


def test_report_fig07(benchmark):
    def body():
        series = {name: [] for name in PREFIX_INDEXES}
        for columns in COLUMNS:
            for name in PREFIX_INDEXES:
                index, probes = prepared(name, columns)
                seconds = measure_seconds(lambda: run_counts(index, probes),
                                          repeats=2)
                series[name].append(round(seconds * 1e3, 2))
        print_series(f"Fig 7: {PROBES} count-prefix ops (ms) vs columns",
                     "columns", COLUMNS, series)

        # Machine-independent O(i)-vs-O(result) check: Sonic's counter
        # read must not scale with the result size being counted.  The
        # yardstick is the floor any enumeration pays — at least one
        # memory touch per result row.  (Sonic's own dense enumeration is
        # not used as the yardstick: with a 12-value domain the patch keys
        # collide 1-in-12 and false-positive descents explode — the §3.3
        # caveat at an unrepresentatively tiny domain; the paper's §5.2
        # workloads use large random key domains.)
        work_rows = []
        touch_ratio = {}
        for domain, label in ((4000, "sparse"), (12, "dense")):
            rows = bench_rows(ROWS, 8, seed=7, domain=domain)
            # fanout exceeds the default bucket on dense data; §5.10's
            # tuning answer — a larger bucket — keeps children resident
            config = SonicConfig.for_tuples(len(rows), bucket_size=32,
                                            overallocation=4.0)
            index = SonicIndex(8, config)
            index.build(rows)
            index.tracer = MemoryTracer(8, config, index.num_levels)
            probes = [row[:2] for row in rows[:200]]
            index.tracer.reset()
            total = sum(index.approx_count_prefix(p) for p in probes)
            count_touches = index.tracer.total_touches() / len(probes)
            average_result = total / len(probes)
            touch_ratio[label] = (count_touches, average_result)
            work_rows.append({
                "workload": label,
                "avg_result": round(average_result, 1),
                "count_touches_per_op": round(count_touches, 1),
                "enumeration_floor_per_op": round(average_result, 1),
            })
        print_table("Fig 7 (work counts): O(prefix) counters vs the "
                    "O(result) enumeration floor", work_rows)
        sparse_count = touch_ratio["sparse"][0]
        dense_count, dense_avg = touch_ratio["dense"]
        assert dense_avg > 10  # the dense counts are genuinely large
        # counter reads stay flat regardless of result size...
        assert dense_count < 20 * max(sparse_count, 1)
        # ...and cost less than touching each counted row even once
        assert dense_count < dense_avg, (dense_count, dense_avg)
        return {"columns": COLUMNS, **series, "work": work_rows}

    run_report(benchmark, body, "fig07")
