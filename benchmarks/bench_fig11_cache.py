"""Fig 11 — lookup time vs index size: the cache cliff (§5.13).

The paper varies index size and observes per-lookup time jump as the
structure outgrows L1 and later L3.  Python wall-clock cannot see this,
so the bench drives the trace-based cache simulator (Xeon 4114 geometry)
and reports simulated cycles per lookup.  Expected shape: flat while the
index fits a level, stepping up at each capacity boundary.
"""

from conftest import bench_rows, run_report
from repro.bench import print_series
from repro.core import SonicConfig, SonicIndex
from repro.hardware import CacheHierarchy, CycleCostModel, MemoryTracer

COLUMNS = 2
PROBES = 3000
SIZES = [256, 1024, 4096, 16384, 65536]


def simulate(num_rows):
    rows = bench_rows(num_rows, COLUMNS, seed=11, domain=max(num_rows * 4, 64))
    config = SonicConfig.for_tuples(len(rows))
    hierarchy = CacheHierarchy()
    index = SonicIndex(COLUMNS, config)
    index.tracer = MemoryTracer(COLUMNS, config, index.num_levels,
                                hierarchy=hierarchy)
    index.build(rows)
    hierarchy.reset()
    index.tracer.reset()
    for position in range(PROBES):
        index.contains(rows[position % len(rows)])
    model = CycleCostModel()
    return (model.cycles_per_operation(hierarchy,
                                       index.tracer.total_touches(), PROBES),
            hierarchy.stats.level_hits,
            index.tracer.total_bytes)


def test_bench_fig11_small(benchmark):
    benchmark.pedantic(simulate, args=(1024,), rounds=1, iterations=1)


def test_bench_fig11_large(benchmark):
    benchmark.pedantic(simulate, args=(65536,), rounds=1, iterations=1)


def test_report_fig11(benchmark):
    def body():
        cycles = []
        footprints = []
        l1_rates = []
        for size in SIZES:
            per_op, hits, footprint = simulate(size)
            total = sum(hits.values()) + 1
            cycles.append(round(per_op, 1))
            footprints.append(footprint)
            l1_rates.append(round(hits["L1"] / total, 3))
        print_series("Fig 11: simulated lookup cost vs index size",
                     "rows", SIZES,
                     {"cycles_per_lookup": cycles,
                      "index_bytes": footprints,
                      "L1_hit_rate": l1_rates})
        # the cliff: lookups on an L1-resident index are much cheaper than
        # on one far beyond it
        assert cycles[0] < cycles[-1]
        assert l1_rates[0] > l1_rates[-1]
        return {"rows": SIZES, "cycles_per_lookup": cycles,
                "L1_hit_rate": l1_rates}

    run_report(benchmark, body, "fig11")
