"""Shared fixtures and helpers for the per-figure benchmarks.

Every file here regenerates one figure or table of the paper (see
DESIGN.md §3).  Run with::

    pytest benchmarks/ --benchmark-only

Two kinds of entries per file:

* ``test_bench_*`` — pytest-benchmark measurements of individual cells
  (one index / one configuration), giving stable relative numbers;
* ``test_report_*`` — a single-round run of the full sweep that prints the
  paper-style series/table (the rows EXPERIMENTS.md records).

Sizes are scaled from the paper's 256M-row tables to Python-appropriate
workloads; the *shape* of each result (who wins, by what factor, where
crossovers sit) is the reproduction target.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench import save_results, time_callable
from repro.data import zipf_table


def bench_rows(num_rows: int, num_columns: int, alpha: float = 0.0,
               seed: int = 0, domain: int | None = None):
    """Deterministic benchmark input rows."""
    return zipf_table("bench", num_rows, num_columns, domain=domain,
                      alpha=alpha, seed=seed).rows


def measure_seconds(fn, repeats: int = 3) -> float:
    return time_callable(fn, repeats=repeats).best_seconds


RESULTS_PATH = Path(__file__).parent / "results.json"


def run_report(benchmark, fn, experiment: str | None = None):
    """Run a report body once under pytest-benchmark and persist its payload.

    ``fn`` computes the full sweep, prints the paper-style series and
    returns a JSON-serializable payload (or None).  Wrapping it in a
    single-round pedantic benchmark keeps report entries alive under
    ``--benchmark-only``.
    """
    payload: list = []

    def once():
        payload.append(fn())

    benchmark.pedantic(once, rounds=1, iterations=1)
    if experiment and payload and payload[0] is not None:
        save_results(RESULTS_PATH, experiment, payload[0])
