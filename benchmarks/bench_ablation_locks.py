"""Ablation — key-range lock granularity (DESIGN.md §4, §3.4.2).

Sweeps the lock granularity through the contention model and verifies the
paper's tuning claim: 8192 is "robust and close-to-optimal (never more
than 30% worse than optimal)" across thread counts.
"""

from conftest import run_report
from repro.bench import print_series
from repro.hardware import ParallelBuildModel, granularity_sweep

CAPACITY = 1 << 21
GRANULARITIES = [64, 512, 4096, 8192, 65536, 524288, CAPACITY]
THREADS = [2, 4, 8, 10, 16, 20]


def test_bench_ablation_locks_model(benchmark):
    model = ParallelBuildModel()
    benchmark(lambda: granularity_sweep(model, CAPACITY, GRANULARITIES, 10))


def test_report_ablation_locks(benchmark):
    def body():
        model = ParallelBuildModel()
        series = {f"g={g}": [] for g in GRANULARITIES}
        worst_gap = 0.0
        for threads in THREADS:
            sweep = granularity_sweep(model, CAPACITY, GRANULARITIES, threads)
            best = max(sweep.values())
            for granularity, speedup in sweep.items():
                series[f"g={granularity}"].append(round(speedup, 2))
            gap = 1.0 - sweep[8192] / best
            worst_gap = max(worst_gap, gap)
        print_series("Ablation: modelled speedup vs lock granularity",
                     "threads", THREADS, series)
        print(f"worst-case gap of granularity 8192 vs optimal: "
              f"{worst_gap * 100:.1f}%")
        # §3.4.2's claim
        assert worst_gap <= 0.30, worst_gap
        return {"threads": THREADS, "worst_gap": worst_gap,
                **{k: v for k, v in series.items()}}

    run_report(benchmark, body, "ablation_locks")
