"""Ablation — AGM-guided anchor selection in the Generic Join (DESIGN.md §4).

``dynamic_seed=True`` re-selects the enumeration seed per binding from
count-prefix comparisons (Alg. 1's size check); ``dynamic_seed=False``
freezes the seed per attribute by base relation size — precisely the
simplification Hash-Trie Join makes (§5.15).  On skewed data the dynamic
choice explores fewer candidates.
"""

from conftest import measure_seconds, run_report
from repro.bench import print_table
from repro.data import umbra_adversarial_tables
from repro.joins import join

ROWS = 300
QUERY = "R1(a,b,d,e), R2(a,c,d,f), R3(a,b,c), R4(b,d,f), R5(c,e,f)"


def run(dynamic):
    source = umbra_adversarial_tables(ROWS, alpha=0.95, seed=32)
    return join(QUERY, source, algorithm="generic", index="sonic",
                dynamic_seed=dynamic)


def test_bench_ablation_agm_dynamic(benchmark):
    benchmark.pedantic(lambda: run(True), rounds=2, iterations=1)


def test_bench_ablation_agm_static(benchmark):
    benchmark.pedantic(lambda: run(False), rounds=2, iterations=1)


def test_report_ablation_agm(benchmark):
    def body():
        rows = []
        counts = set()
        intermediates = {}
        for label, dynamic in (("dynamic (AGM-guided)", True),
                               ("static (HTJ-like)", False)):
            result = run(dynamic)
            counts.add(result.count)
            intermediates[label] = result.metrics.intermediate_tuples
            seconds = measure_seconds(lambda: run(dynamic), repeats=2)
            rows.append({
                "seed_policy": label,
                "total_ms": round(seconds * 1e3, 2),
                "intermediates": result.metrics.intermediate_tuples,
                "lookups": result.metrics.lookups,
                "results": result.count,
            })
        print_table("Ablation: per-binding AGM anchor selection", rows)
        assert len(counts) == 1  # policies agree on the answer
        # the dynamic policy must not explore more candidates
        assert intermediates["dynamic (AGM-guided)"] <= \
            intermediates["static (HTJ-like)"]
        return {"rows": rows}

    run_report(benchmark, body, "ablation_agm")
