"""Fig 6 — prefix lookup time vs number of columns (§5.7).

Ten thousand prefix lookups at prefix length = columns/2, half misses.
Expected shape: Sonic fastest among all prefix-capable structures; the
hierarchical map degrades as its hash-table chains lengthen.
"""

import pytest

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import PREFIX_INDEXES, make_sized_index, print_series
from repro.data import prefix_workload
from repro.storage import Relation

ROWS = 4000
PROBES = 1500
COLUMNS = [2, 4, 6, 8]


def prepared(name, columns):
    rows = bench_rows(ROWS, columns, seed=6)
    index = make_sized_index(name, columns, len(rows))
    index.build(rows)
    relation = Relation("bench", tuple(f"c{i}" for i in range(columns)), rows)
    probes = prefix_workload(relation, PROBES, prefix_length=max(columns // 2, 1),
                             seed=66)
    return index, probes


def run_prefix_lookups(index, probes):
    matched = 0
    for probe in probes:
        for _ in index.prefix_lookup(probe):
            matched += 1
    return matched


@pytest.mark.parametrize("columns", [2, 8])
@pytest.mark.parametrize("name", PREFIX_INDEXES)
def test_bench_fig06(benchmark, name, columns):
    index, probes = prepared(name, columns)
    benchmark(run_prefix_lookups, index, probes)


def test_report_fig06(benchmark):
    def body():
        series = {name: [] for name in PREFIX_INDEXES}
        for columns in COLUMNS:
            for name in PREFIX_INDEXES:
                index, probes = prepared(name, columns)
                seconds = measure_seconds(
                    lambda: run_prefix_lookups(index, probes), repeats=2)
                series[name].append(round(seconds * 1e3, 2))
        print_series(f"Fig 6: {PROBES} prefix lookups (ms) vs columns",
                     "columns", COLUMNS, series)
        # §5.7 shapes robust to Python constants (the BTree inversion is
        # discussed in EXPERIMENTS.md): Sonic leads the hash-based group
        # on narrow tables, and the hierarchical map's chain-of-tables
        # degradation with width is steeper than the burst trie's.
        assert series["sonic"][0] <= series["hiermap"][0]
        hier_growth = series["hiermap"][-1] / max(series["hiermap"][0], 1e-9)
        hattrie_growth = series["hattrie"][-1] / max(series["hattrie"][0], 1e-9)
        assert hier_growth > hattrie_growth
        return {"columns": COLUMNS, **series}

    run_report(benchmark, body, "fig06")
