"""Perf-trajectory harness: tuple vs batch Generic Join on a pinned suite.

Unlike the ``bench_figNN_*`` files (which reproduce individual paper
figures via pytest-benchmark), this is a standalone script tracking the
repo's own performance trajectory across PRs: the same pinned workloads,
run through both Generic Join execution engines, with the comparison
written to ``BENCH_generic_join.json`` at the repo root so the numbers are
versioned alongside the code that produced them.

Suite (seeds and sizes pinned — reruns are comparable):

* ``triangle``  — directed triangle count on uniform random edge
  relations (Fig 1 / Fig 14's 3-cycle), sweeping edge count;
* ``4clique``   — the 4-clique query (six atoms, the densest small
  pattern; stresses deep intersection);
* ``job_light`` — three JOB-light-style star queries over the synthetic
  IMDB catalog (§5.16's relational regime, where batch wins are smallest).

Every case runs both engines and **fails loudly on any count divergence**
— the script doubles as the CI equivalence gate (smoke mode).

Each case also carries a ``warm`` column: the same query re-executed
through a :class:`~repro.engine.session.Session`-prepared join, whose
indexes come out of the session cache instead of being rebuilt — the
serving-path cost the staged engine exists to eliminate.  A dedicated
``sessions`` section additionally verifies the cache *counters* (exact
hit/miss accounting on the pinned triangle — counter gates are CI-safe
where wall-clock gates are not) and measures a build-dominated
``triangle_hot`` serving case: a handful of hot vertices probed against
the full pinned edge relation, where cold cost ≈ index build and the
warm/cold ratio is the headline number (``--min-warm-speedup``).

Usage::

    python benchmarks/bench_trajectory.py            # full run, ~minutes
    python benchmarks/bench_trajectory.py --smoke    # CI-sized, seconds
    python benchmarks/bench_trajectory.py --min-speedup 3.0   # + perf gate
    python benchmarks/bench_trajectory.py --smoke --sessions-only
    python benchmarks/bench_trajectory.py --min-warm-speedup 5.0
    python benchmarks/bench_trajectory.py --smoke --build-only

``--min-speedup X`` additionally requires batch to beat tuple by ``X``x
(probe time) on every triangle case with >= 50k edges; used when
refreshing the committed full-run JSON, not in smoke mode (wall-clock
gates on shared CI runners are flake factories).  ``--min-warm-speedup``
is the warm-path analogue, gating the ``triangle_hot`` serving case;
``--sessions-only`` runs just the session section (the CI session-reuse
smoke job).

A ``bulk_build`` section compares the cold adapter-build cost of the
per-tuple ``insert()`` loop against the columnar ``build_bulk`` path
(one ``np.lexsort`` + group-at-a-time construction) on the pinned
triangle@100k relation, gated by ``--min-build-speedup``;
``--build-only`` runs just that section (the CI build-speedup smoke
job).  Partial runs (``--sessions-only``/``--build-only``) never
rewrite the committed JSON.

A ``parallel`` section measures the multiprocess sharded path
(:mod:`repro.parallel`): the pinned triangle cold through ``parallel=1``
(one worker — the fleet-overhead floor) vs ``parallel=--workers``
(default 4), total wall clock, with exact count equivalence against
the single-process run.  ``--min-parallel-speedup`` gates the ratio,
but **CPU-aware**: on a runner with fewer cores than workers the gate
is waived (recorded as ``gate_waived`` with a printed warning) since
multiprocess scaling there is physically impossible; equivalence is
never waived.  ``--parallel-only`` runs just this section (the CI
parallel-smoke job) and, like the other partial modes, never rewrites
the committed JSON.

A ``unified`` section runs each pinned JOB-light query as a pure binary
pipeline, a pure batch Generic Join, and a unified stage-tree plan
(``algorithm="unified"``), recording the per-case winner and the
best per-round (back-to-back, drift-cancelling) ratio of the better
pure plan to the unified plan; ``--min-unified-ratio``
(default 0.95) fails the run if a unified plan falls more than 5%
behind.  The section also measures the lazy-COLT prefix-only case: a
probe relation disjoint from the pinned graph, where the join dies at
the first attribute and a ``lazy=True`` build materializes one trie
level instead of two full indexes — cold ``build_s`` lazy vs eager is
the recorded win, gated alongside the ratio.  ``--unified-only`` runs
just this section (the CI unified-plan-smoke job) and never rewrites
the committed JSON.

The run also measures the **observability overhead** (``obs_overhead``
in the output JSON): probe time with no observer vs a present-but-
disabled :class:`~repro.obs.observer.JoinObserver` vs full profiling.
``--max-obs-overhead`` (default 5%) fails the run if the disabled
observer is measurably slower than none at all — the teeth behind the
``obs.enabled`` branch-once discipline that lint rule RA601 checks
statically.  The same three modes also run through the sharded path
(``parallel=2``, recorded under ``obs_overhead.parallel``): the
distributed trace/flight-recorder plumbing must be free when off too,
gated by the same threshold but CPU-aware (waived below 2 cores, where
multiprocess wall clock is scheduler noise).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.adapter import set_bulk_build               # noqa: E402
from repro.data.graphs import random_edge_relation          # noqa: E402
from repro.data.imdb import job_light_queries, make_imdb    # noqa: E402
from repro.engine import Session                            # noqa: E402
from repro.joins import join                                # noqa: E402
from repro.obs.observer import JoinObserver                 # noqa: E402
from repro.planner.query import parse_query                 # noqa: E402
from repro.storage.relation import Relation                 # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_generic_join.json"
ENGINES = ("tuple", "batch")

TRIANGLE = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
FOUR_CLIQUE = parse_query(
    "E1=E(a,b), E2=E(a,c), E3=E(a,d), E4=E(b,c), E5=E(b,d), E6=E(c,d)"
)

#: pinned sweep points: (nodes, edges) per triangle case
TRIANGLE_SIZES = ((2_000, 10_000), (6_000, 50_000), (10_000, 100_000))
TRIANGLE_SIZES_SMOKE = ((600, 2_000),)
#: 4-clique needs denser, smaller graphs to have non-trivial results
CLIQUE_SIZES = ((300, 6_000), (600, 15_000))
CLIQUE_SIZES_SMOKE = ((120, 1_200),)
#: JOB-light-style: catalog scale and which queries from the workload
IMDB_TITLES = 4_000
IMDB_TITLES_SMOKE = 400
JOB_QUERY_NAMES = ("job_1_cast_info", "job_2_cast_info_keyword",
                   "job_3_cast_info_info_companies")

GRAPH_SEED = 13


def _run_engine(query, relations, engine: str, index: str, repeats: int):
    """Best-of-``repeats`` timings for one (query, engine) cell."""
    best = None
    for _ in range(repeats):
        result = join(query, relations, index=index, engine=engine)
        metrics = result.metrics
        if best is None or metrics.probe_seconds < best["probe_s"]:
            best = {
                "count": result.count,
                "build_s": round(metrics.build_seconds, 6),
                "probe_s": round(metrics.probe_seconds, 6),
                "total_s": round(metrics.total_seconds, 6),
                "intermediates": metrics.intermediate_tuples,
                "lookups": metrics.lookups,
            }
    return best


def _run_warm(query, relations, index: str, repeats: int) -> dict:
    """Best-of-``repeats`` warm (session-prepared) re-execution timings.

    One :class:`Session` prepares the query once — paying every index
    build into the cache — then each timed run re-executes the prepared
    join with all structures coming out of the cache (``build_s`` is 0
    by construction; an assertion would be redundant with the dedicated
    session section's counter gate).

    ``engine="auto"`` matters: the warm column is the *serving path*,
    which must run whatever driver the planner would pick, not a pinned
    tuple-at-a-time rendering.  Pinning ``"tuple"`` here made warm
    re-execution *slower* than a cold batch run on mid-size triangles
    (warm_speedup 0.883 on triangle_n6000_m50000) — a bench artifact,
    not an engine regression.
    """
    with Session(relations) as session:
        prepared = session.prepare(query, index=index, engine="auto")
        prepared.execute()  # consume the one-time build charge
        best = None
        for _ in range(repeats):
            result = prepared.execute()
            metrics = result.metrics
            if best is None or metrics.probe_seconds < best["probe_s"]:
                best = {
                    "count": result.count,
                    "probe_s": round(metrics.probe_seconds, 6),
                    "total_s": round(metrics.total_seconds, 6),
                }
    return best


def _run_case(name: str, workload: str, query, relations,
              index: str, repeats: int, detail: dict) -> dict:
    case = {"name": name, "workload": workload, "index": index, **detail}
    for engine in ENGINES:
        case[engine] = _run_engine(query, relations, engine, index, repeats)
    case["warm"] = _run_warm(query, relations, index, repeats)
    counts = {engine: case[engine]["count"] for engine in ENGINES}
    counts["warm"] = case["warm"]["count"]
    case["count"] = counts["tuple"]
    case["diverged"] = len(set(counts.values())) > 1
    tuple_probe, batch_probe = case["tuple"]["probe_s"], case["batch"]["probe_s"]
    tuple_total, batch_total = case["tuple"]["total_s"], case["batch"]["total_s"]
    warm_total = case["warm"]["total_s"]
    case["probe_speedup"] = round(tuple_probe / batch_probe, 3) if batch_probe else None
    case["total_speedup"] = round(tuple_total / batch_total, 3) if batch_total else None
    case["warm_speedup"] = round(tuple_total / warm_total, 3) if warm_total else None
    status = "DIVERGED" if case["diverged"] else "ok"
    print(f"  {name:42s} count={counts['tuple']:<10d} "
          f"probe {tuple_probe:.3f}s -> {batch_probe:.3f}s "
          f"({case['probe_speedup']}x)  "
          f"warm {warm_total:.3f}s ({case['warm_speedup']}x)  [{status}]")
    return case


def run_suite(smoke: bool, index: str, repeats: int) -> list[dict]:
    cases: list[dict] = []

    print("triangle:")
    for nodes, edges in (TRIANGLE_SIZES_SMOKE if smoke else TRIANGLE_SIZES):
        relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED)
        relations = {"E1": relation, "E2": relation, "E3": relation}
        cases.append(_run_case(
            f"triangle_n{nodes}_m{edges}", "triangle", TRIANGLE, relations,
            index, repeats, {"nodes": nodes, "edges": edges}))

    print("4clique:")
    for nodes, edges in (CLIQUE_SIZES_SMOKE if smoke else CLIQUE_SIZES):
        relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED + 1)
        relations = {alias: relation
                     for alias in ("E1", "E2", "E3", "E4", "E5", "E6")}
        cases.append(_run_case(
            f"4clique_n{nodes}_m{edges}", "4clique", FOUR_CLIQUE, relations,
            index, repeats, {"nodes": nodes, "edges": edges}))

    print("job_light:")
    catalog = make_imdb(IMDB_TITLES_SMOKE if smoke else IMDB_TITLES,
                        seed=GRAPH_SEED)
    workload = {q.name: q for q in job_light_queries(catalog, seed=GRAPH_SEED)}
    for name in JOB_QUERY_NAMES:
        job = workload[name]
        cases.append(_run_case(
            name, "job_light", job.query, job.relations, index, repeats,
            {"satellites": len(job.query.atoms) - 1}))

    return cases


#: (nodes, edges) for the obs-overhead measurement (mid-size triangle)
OBS_GRAPH = (6_000, 50_000)
OBS_GRAPH_SMOKE = (600, 2_000)
OBS_REPEATS = 5
#: shard count for the parallel-path overhead measurement
OBS_PARALLEL_WORKERS = 2


def _best_of_modes(run, repeats: int) -> dict[str, float]:
    """Best wall time per obs mode (absent / disabled / profiled)."""
    timings: dict[str, float] = {}
    for mode in ("absent", "disabled", "profiled"):
        if mode == "disabled":
            extra = {"obs": JoinObserver.disabled()}
        elif mode == "profiled":
            extra = {"profile": True}
        else:
            extra = {}
        best = None
        for _ in range(repeats):
            seconds = run(extra)
            if best is None or seconds < best:
                best = seconds
        timings[mode] = best
    return timings


def _overhead_pct(timings: dict[str, float], mode: str) -> float:
    if not timings["absent"]:
        return 0.0
    return round(100.0 * (timings[mode] - timings["absent"])
                 / timings["absent"], 2)


def measure_obs_overhead(smoke: bool, index: str) -> dict:
    """Probe time with the observer absent vs disabled vs profiling.

    Disabled must cost the same as absent: the drivers branch exactly
    once per run on ``obs.enabled`` and the un-instrumented recursion
    contains no observability code (lint rule RA601 guards the
    discipline; this measures it).  Best-of-``OBS_REPEATS`` keeps the
    ratio out of scheduler noise.

    The same three modes run again through the sharded path
    (``parallel=OBS_PARALLEL_WORKERS``): a disabled observer must be
    free there too — the fan-out layer's flight recorder and trace
    plumbing sit behind the identical ``enabled`` discipline.  Wall
    clock across K processes is scheduler physics on a starved runner,
    so (like the parallel speedup gate) the parallel overhead gate is
    waived when the runner has fewer CPUs than workers; the numbers
    are still recorded.
    """
    nodes, edges = OBS_GRAPH_SMOKE if smoke else OBS_GRAPH
    relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED)
    relations = {"E1": relation, "E2": relation, "E3": relation}

    timings = _best_of_modes(
        lambda extra: join(TRIANGLE, relations, index=index, engine="tuple",
                           **extra).metrics.probe_seconds,
        OBS_REPEATS)

    workers = OBS_PARALLEL_WORKERS
    parallel_timings = _best_of_modes(
        lambda extra: join(TRIANGLE, relations, index=index, engine="tuple",
                           parallel=workers, **extra).metrics.total_seconds,
        OBS_REPEATS)
    cpus = os.cpu_count() or 1

    report = {
        "workload": f"triangle_n{nodes}_m{edges}",
        "repeats": OBS_REPEATS,
        "absent_probe_s": round(timings["absent"], 6),
        "disabled_probe_s": round(timings["disabled"], 6),
        "profiled_probe_s": round(timings["profiled"], 6),
        "disabled_overhead_pct": _overhead_pct(timings, "disabled"),
        "profiled_overhead_pct": _overhead_pct(timings, "profiled"),
        "parallel": {
            "workers": workers,
            "cpus": cpus,
            "absent_total_s": round(parallel_timings["absent"], 6),
            "disabled_total_s": round(parallel_timings["disabled"], 6),
            "profiled_total_s": round(parallel_timings["profiled"], 6),
            "disabled_overhead_pct": _overhead_pct(parallel_timings,
                                                   "disabled"),
            "profiled_overhead_pct": _overhead_pct(parallel_timings,
                                                   "profiled"),
            "gate_waived": (f"runner has {cpus} CPU(s) < {workers} workers; "
                            f"parallel obs-overhead gate waived"
                            if cpus < workers else None),
        },
    }
    print("obs overhead:")
    print(f"  absent {timings['absent']:.4f}s  "
          f"disabled {timings['disabled']:.4f}s "
          f"({report['disabled_overhead_pct']:+.2f}%)  "
          f"profiled {timings['profiled']:.4f}s "
          f"({report['profiled_overhead_pct']:+.2f}%)")
    par = report["parallel"]
    print(f"  parallel({workers}w): absent {parallel_timings['absent']:.4f}s  "
          f"disabled {parallel_timings['disabled']:.4f}s "
          f"({par['disabled_overhead_pct']:+.2f}%)  "
          f"profiled {parallel_timings['profiled']:.4f}s "
          f"({par['profiled_overhead_pct']:+.2f}%)")
    if par["gate_waived"]:
        print(f"  WARNING: {par['gate_waived']}")
    return report


#: session section: pinned counter-verification graph (always this size —
#: counter accounting is size-independent, so keep it CI-cheap)
SESSION_GRAPH = (600, 2_000)
#: the hot-vertex serving case runs on the largest pinned triangle graph
HOT_GRAPH = (10_000, 100_000)
HOT_GRAPH_SMOKE = (600, 2_000)
HOT_VERTEX_COUNT = 64
HOT_QUERY = parse_query("E1=H(a,b), E2=E(b,c), E3=E(c,a)")


def verify_session_cache(index: str) -> dict:
    """Exact cache accounting on the pinned triangle (always gated).

    Wall-clock speedups flake on shared runners; cache *counters* do
    not.  The triangle self-join must produce exactly 2 misses (one per
    distinct column permutation of the shared edge storage), 1 hit
    (E2 reuses E1's build), and 3 more hits on a second prepare — and
    warm re-execution must report ``build_seconds == 0.0`` exactly,
    proving no index was rebuilt on the serving path.
    """
    nodes, edges = SESSION_GRAPH
    relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED)
    relations = {"E1": relation, "E2": relation, "E3": relation}
    with Session(relations) as session:
        prepared = session.prepare(TRIANGLE, index=index)
        first = prepared.execute()
        warm = prepared.execute()
        rewarm = session.prepare(TRIANGLE, index=index).execute()
        stats = session.cache_stats()
    expected = {"misses": 2, "hits": 4, "entries": 2}
    observed = {"misses": stats.misses, "hits": stats.hits,
                "entries": stats.entries}
    report = {
        "workload": f"triangle_n{nodes}_m{edges}",
        "index": index,
        "expected": expected,
        "observed": observed,
        "first_build_s": round(first.metrics.build_seconds, 6),
        "warm_build_s": warm.metrics.build_seconds,
        "counts_agree": first.count == warm.count == rewarm.count,
        "ok": (observed == expected
               and first.metrics.build_seconds > 0.0
               and warm.metrics.build_seconds == 0.0
               and first.count == warm.count == rewarm.count),
    }
    print("session cache:")
    print(f"  {report['workload']:42s} "
          f"misses={observed['misses']} hits={observed['hits']} "
          f"entries={observed['entries']} warm_build={report['warm_build_s']}s "
          f"[{'ok' if report['ok'] else 'FAIL'}]")
    return report


def run_triangle_hot(smoke: bool, index: str, repeats: int) -> dict:
    """The build-dominated serving case behind ``--min-warm-speedup``.

    A handful of "hot" vertices (their out-edges as a small relation H)
    joined against the full pinned edge relation: the probe touches a
    sliver of the graph, so cold cost is almost entirely the two big
    index builds the session cache amortizes away.  This is the staged
    engine's headline workload — repeated small queries over a large,
    slowly-changing graph.
    """
    nodes, edges = HOT_GRAPH_SMOKE if smoke else HOT_GRAPH
    relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED)
    sources = sorted({row[0] for row in relation.rows})
    step = max(1, len(sources) // HOT_VERTEX_COUNT)
    hot = set(sources[::step][:HOT_VERTEX_COUNT])
    hot_edges = Relation("H", ("src", "dst"),
                         [row for row in relation.rows if row[0] in hot])
    relations = {"E1": hot_edges, "E2": relation, "E3": relation}

    cold = None
    for _ in range(repeats):
        result = join(HOT_QUERY, relations, index=index, engine="tuple")
        metrics = result.metrics
        if cold is None or metrics.total_seconds < cold["total_s"]:
            cold = {
                "count": result.count,
                "build_s": round(metrics.build_seconds, 6),
                "probe_s": round(metrics.probe_seconds, 6),
                "total_s": round(metrics.total_seconds, 6),
            }
    warm = _run_warm(HOT_QUERY, relations, index, max(repeats, 3))

    warm_total = warm["total_s"]
    speedup = round(cold["total_s"] / warm_total, 3) if warm_total else None
    report = {
        "name": f"triangle_hot_n{nodes}_m{edges}",
        "nodes": nodes,
        "edges": edges,
        "hot_vertices": HOT_VERTEX_COUNT,
        "hot_edges": len(hot_edges),
        "index": index,
        "count": cold["count"],
        "cold": cold,
        "warm": warm,
        "warm_speedup": speedup,
        "diverged": cold["count"] != warm["count"],
    }
    status = "DIVERGED" if report["diverged"] else "ok"
    print(f"  {report['name']:42s} count={cold['count']:<10d} "
          f"cold {cold['total_s']:.3f}s -> warm {warm_total:.3f}s "
          f"({speedup}x)  [{status}]")
    return report


def run_session_suite(smoke: bool, index: str, repeats: int) -> dict:
    sessions = {"cache": verify_session_cache(index)}
    print("triangle_hot:")
    sessions["triangle_hot"] = run_triangle_hot(smoke, index, repeats)
    return sessions


#: the columnar-build comparison runs on the largest pinned triangle
BULK_GRAPH = (10_000, 100_000)
BULK_GRAPH_SMOKE = (600, 2_000)


def run_bulk_build(smoke: bool, index: str, repeats: int) -> dict:
    """Cold build cost: per-tuple ``insert()`` vs columnar ``build_bulk``.

    The same cold triangle join runs with the adapter's bulk switch off
    and on; ``build_s`` (the executor's adapter-build phase, which in
    bulk mode includes column materialization, the lexsort and the
    group-walk) is compared best-of-``repeats`` per mode.  The result
    counts must agree exactly — this section doubles as an equivalence
    gate on the integrated path.
    """
    nodes, edges = BULK_GRAPH_SMOKE if smoke else BULK_GRAPH
    relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED)
    relations = {"E1": relation, "E2": relation, "E3": relation}
    repeats = max(repeats, 3)

    modes: dict[str, dict] = {}
    for mode, enabled in (("per_tuple", False), ("bulk", True)):
        previous = set_bulk_build(enabled)
        try:
            best = None
            for _ in range(repeats):
                result = join(TRIANGLE, relations, index=index, engine="tuple")
                metrics = result.metrics
                if best is None or metrics.build_seconds < best["build_s"]:
                    best = {
                        "count": result.count,
                        "build_s": round(metrics.build_seconds, 6),
                        "probe_s": round(metrics.probe_seconds, 6),
                        "total_s": round(metrics.total_seconds, 6),
                    }
        finally:
            set_bulk_build(previous)
        modes[mode] = best

    per_tuple, bulk = modes["per_tuple"], modes["bulk"]
    speedup = (round(per_tuple["build_s"] / bulk["build_s"], 3)
               if bulk["build_s"] else None)
    report = {
        "name": f"bulk_build_n{nodes}_m{edges}",
        "nodes": nodes,
        "edges": edges,
        "index": index,
        "repeats": repeats,
        "per_tuple": per_tuple,
        "bulk": bulk,
        "build_speedup": speedup,
        "diverged": per_tuple["count"] != bulk["count"],
    }
    status = "DIVERGED" if report["diverged"] else "ok"
    print("bulk build:")
    print(f"  {report['name']:42s} count={per_tuple['count']:<10d} "
          f"build {per_tuple['build_s']:.3f}s -> {bulk['build_s']:.3f}s "
          f"({speedup}x)  [{status}]")
    return report


#: the multiprocess scaling case runs on the largest pinned triangle
PARALLEL_GRAPH = (10_000, 100_000)
PARALLEL_GRAPH_SMOKE = (600, 2_000)


def run_parallel(smoke: bool, index: str, repeats: int, workers: int) -> dict:
    """Wall-clock scaling of the multiprocess sharded path (Fig 16's axis).

    The pinned triangle runs once single-process (the equivalence
    reference), then cold through the sharded path with ``parallel=1``
    (one worker — the fleet overhead floor: partitioning, shared-memory
    transport, one process round-trip) and ``parallel=workers``.  The
    speedup is total wall clock (build + probe, §5.15: partitioning is
    the sharded plan's build phase and the workers' index builds are on
    the probe clock) of 1 worker over ``workers`` workers.  All counts
    must agree exactly.

    The speedup gate (``--min-parallel-speedup``) is **CPU-aware**:
    multiprocess scaling is physics, not code — on a runner with fewer
    cores than ``workers`` the gate cannot pass honestly, so it is
    waived (``gate_waived`` in the JSON names the reason) and the
    measured numbers are recorded as-is.  Count equivalence is never
    waived.
    """
    nodes, edges = PARALLEL_GRAPH_SMOKE if smoke else PARALLEL_GRAPH
    relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED)
    relations = {"E1": relation, "E2": relation, "E3": relation}
    repeats = max(repeats, 2)

    reference = join(TRIANGLE, relations, index=index, engine="batch")

    modes: dict[str, dict] = {}
    for label, k in (("one_worker", 1), (f"workers_{workers}", workers)):
        best = None
        for _ in range(repeats):
            result = join(TRIANGLE, relations, index=index, engine="batch",
                          parallel=k)
            metrics = result.metrics
            if best is None or metrics.total_seconds < best["total_s"]:
                best = {
                    "count": result.count,
                    "build_s": round(metrics.build_seconds, 6),
                    "probe_s": round(metrics.probe_seconds, 6),
                    "total_s": round(metrics.total_seconds, 6),
                }
        modes[label] = best

    one, many = modes["one_worker"], modes[f"workers_{workers}"]
    speedup = (round(one["total_s"] / many["total_s"], 3)
               if many["total_s"] else None)
    cpus = os.cpu_count() or 1
    report = {
        "name": f"parallel_triangle_n{nodes}_m{edges}",
        "nodes": nodes,
        "edges": edges,
        "index": index,
        "engine": "batch",
        "workers": workers,
        "cpus": cpus,
        "repeats": repeats,
        "count": reference.count,
        "single_process": {
            "count": reference.count,
            "total_s": round(reference.metrics.total_seconds, 6),
        },
        "one_worker": one,
        f"workers_{workers}": many,
        "parallel_speedup": speedup,
        "diverged": len({reference.count, one["count"], many["count"]}) > 1,
        "gate_waived": (f"runner has {cpus} CPU(s) < {workers} workers; "
                        f"wall-clock scaling gate waived"
                        if cpus < workers else None),
    }
    status = "DIVERGED" if report["diverged"] else "ok"
    print("parallel:")
    print(f"  {report['name']:42s} count={reference.count:<10d} "
          f"1w {one['total_s']:.3f}s -> {workers}w {many['total_s']:.3f}s "
          f"({speedup}x, {cpus} cpus)  [{status}]")
    if report["gate_waived"]:
        print(f"  WARNING: {report['gate_waived']}")
    return report


#: the lazy prefix-only case runs on the largest pinned triangle graph
LAZY_GRAPH = (10_000, 100_000)
LAZY_GRAPH_SMOKE = (600, 2_000)
#: probe relation for the prefix-only case: vertices disjoint from the
#: pinned graph, so the join dies at the first attribute level
LAZY_PROBE_VERTICES = 64


def run_unified(smoke: bool, index: str, repeats: int) -> dict:
    """Unified stage-tree plans vs the better pure plan, per JOB-light case.

    Each pinned JOB-light query runs as a pure binary pipeline, a pure
    batch Generic Join, and a unified stage-tree plan (best-of-repeats
    total time each).  The recorded ``winner`` is the fastest cell.
    ``unified_ratio`` is the best *per-round* ratio of best-pure total
    to unified total: the three cells run back-to-back inside each
    repeat round, and pairing within a round is what cancels machine
    drift (frequency scaling, noisy neighbors) that would otherwise
    swamp a few-percent plan difference.  The ``--min-unified-ratio``
    gate (default 0.95) demands the unified plan stay within 5% of
    whichever pure plan wins under those matched conditions.  Counts
    must agree exactly across all three cells.

    The ``lazy_prefix`` sub-case is the headline for lazy COLT builds: a
    probe relation whose vertices are disjoint from the pinned graph, so
    the join dies at the first attribute and a lazy build materializes
    one trie level where the eager build pays for every level of two
    large indexes.  Cold ``build_s`` lazy vs eager is the recorded win.
    """
    from repro.indexes.lazy import LAZY_CAPABLE_KINDS

    print("unified:")
    # the JOB-light cells finish in single-digit milliseconds, where
    # scheduling noise swamps any real plan difference: warm every cell
    # up untimed, then interleave the timed repeats round-robin across
    # the cells (so a transient slowdown hits all of them, not one
    # cell's whole block) and take each cell's best with the garbage
    # collector paused
    repeats = max(repeats, 7)
    catalog = make_imdb(IMDB_TITLES_SMOKE if smoke else IMDB_TITLES,
                        seed=GRAPH_SEED)
    workload = {q.name: q for q in job_light_queries(catalog, seed=GRAPH_SEED)}
    plans = (
        ("binary", {"algorithm": "binary"}),
        ("batch", {"algorithm": "generic", "engine": "batch", "index": index}),
        ("unified", {"algorithm": "unified", "index": index}),
    )
    cases = []
    for name in JOB_QUERY_NAMES:
        job = workload[name]
        cells: dict[str, dict] = {}
        for label, options in plans:
            join(job.query, job.relations, **options)  # warmup, untimed
        ratio = None
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                totals: dict[str, float] = {}
                for label, options in plans:
                    result = join(job.query, job.relations, **options)
                    metrics = result.metrics
                    totals[label] = metrics.total_seconds
                    best = cells.get(label)
                    if best is None or metrics.total_seconds < best["total_s"]:
                        cells[label] = {
                            "count": result.count,
                            "build_s": round(metrics.build_seconds, 6),
                            "probe_s": round(metrics.probe_seconds, 6),
                            "total_s": round(metrics.total_seconds, 6),
                        }
                # the gate ratio pairs cells *within* a round — machine
                # drift across rounds (frequency scaling, neighbors)
                # dwarfs the plan difference, and back-to-back runs are
                # the only fairly matched comparison
                if totals["unified"]:
                    round_ratio = (min(totals["binary"], totals["batch"])
                                   / totals["unified"])
                    if ratio is None or round_ratio > ratio:
                        ratio = round(round_ratio, 3)
        finally:
            if was_enabled:
                gc.enable()
        best_pure = min(("binary", "batch"),
                        key=lambda label: cells[label]["total_s"])
        winner = min(cells, key=lambda label: cells[label]["total_s"])
        unified_total = cells["unified"]["total_s"]
        case = {
            "name": name,
            "workload": "job_light",
            **cells,
            "best_pure": best_pure,
            "winner": winner,
            "unified_ratio": ratio,
            "diverged": len({c["count"] for c in cells.values()}) > 1,
        }
        status = "DIVERGED" if case["diverged"] else "ok"
        print(f"  {name:42s} count={cells['unified']['count']:<10d} "
              f"pure({best_pure}) {cells[best_pure]['total_s']:.4f}s  "
              f"unified {unified_total:.4f}s "
              f"(ratio {ratio}x, winner={winner})  [{status}]")
        cases.append(case)

    # --- the prefix-only lazy build case ------------------------------
    lazy_kind = index if index in LAZY_CAPABLE_KINDS else "sonic"
    nodes, edges = LAZY_GRAPH_SMOKE if smoke else LAZY_GRAPH
    relation = random_edge_relation(nodes, edges, seed=GRAPH_SEED)
    probe = Relation("H", ("src", "dst"),
                     [(nodes + i, nodes + i + 1)
                      for i in range(LAZY_PROBE_VERTICES)])
    relations = {"E1": probe, "E2": relation, "E3": relation}
    modes: dict[str, dict] = {}
    for mode, lazy in (("eager", False), ("lazy", True)):
        best = None
        for _ in range(max(repeats, 3)):
            result = join(HOT_QUERY, relations, algorithm="generic",
                          index=lazy_kind, lazy=lazy)
            metrics = result.metrics
            if best is None or metrics.build_seconds < best["build_s"]:
                best = {
                    "count": result.count,
                    "build_s": round(metrics.build_seconds, 6),
                    "probe_s": round(metrics.probe_seconds, 6),
                    "total_s": round(metrics.total_seconds, 6),
                }
        modes[mode] = best
    eager, lazy = modes["eager"], modes["lazy"]
    build_speedup = (round(eager["build_s"] / lazy["build_s"], 3)
                     if lazy["build_s"] else None)
    lazy_prefix = {
        "name": f"lazy_prefix_n{nodes}_m{edges}",
        "nodes": nodes,
        "edges": edges,
        "index": lazy_kind,
        "probe_vertices": LAZY_PROBE_VERTICES,
        "eager": eager,
        "lazy": lazy,
        "build_speedup": build_speedup,
        "diverged": eager["count"] != lazy["count"],
    }
    status = "DIVERGED" if lazy_prefix["diverged"] else "ok"
    print(f"  {lazy_prefix['name']:42s} count={eager['count']:<10d} "
          f"build {eager['build_s']:.4f}s -> {lazy['build_s']:.4f}s "
          f"({build_speedup}x)  [{status}]")
    return {"cases": cases, "lazy_prefix": lazy_prefix}


def check_gates(cases: list[dict], min_speedup: float,
                obs_overhead: "dict | None" = None,
                max_obs_overhead: float = 0.0,
                sessions: "dict | None" = None,
                min_warm_speedup: float = 0.0,
                bulk: "dict | None" = None,
                min_build_speedup: float = 0.0,
                parallel: "dict | None" = None,
                min_parallel_speedup: float = 0.0,
                unified: "dict | None" = None,
                min_unified_ratio: float = 0.0) -> list[str]:
    """Equivalence gate (always) and the optional speedup/overhead gates."""
    failures = []
    if unified is not None:
        for case in unified["cases"]:
            if case["diverged"]:
                counts = {label: case[label]["count"]
                          for label in ("binary", "batch", "unified")}
                failures.append(
                    f"{case['name']}: unified plan counts diverged ({counts})"
                )
            if (min_unified_ratio > 0
                    and (case["unified_ratio"] or 0) < min_unified_ratio):
                failures.append(
                    f"{case['name']}: unified ratio {case['unified_ratio']}x "
                    f"below the {min_unified_ratio}x gate (best pure: "
                    f"{case['best_pure']})"
                )
        lazy = unified["lazy_prefix"]
        if lazy["diverged"]:
            failures.append(
                f"{lazy['name']}: lazy count {lazy['lazy']['count']} != "
                f"eager count {lazy['eager']['count']}"
            )
        if min_unified_ratio > 0 and (lazy["build_speedup"] or 0) <= 1.0:
            failures.append(
                f"{lazy['name']}: lazy cold build ({lazy['lazy']['build_s']}s) "
                f"did not beat the eager build "
                f"({lazy['eager']['build_s']}s) on the prefix-only case"
            )
    if parallel is not None:
        if parallel["diverged"]:
            failures.append(
                f"{parallel['name']}: sharded counts diverged from the "
                f"single-process count {parallel['count']}"
            )
        if min_parallel_speedup > 0 and not parallel["gate_waived"]:
            if (parallel["parallel_speedup"] or 0) < min_parallel_speedup:
                failures.append(
                    f"{parallel['name']}: parallel speedup "
                    f"{parallel['parallel_speedup']}x below the "
                    f"{min_parallel_speedup}x gate"
                )
    if bulk is not None:
        if bulk["diverged"]:
            failures.append(
                f"{bulk['name']}: bulk count {bulk['bulk']['count']} != "
                f"per-tuple count {bulk['per_tuple']['count']}"
            )
        if min_build_speedup > 0 and (bulk["build_speedup"] or 0) < min_build_speedup:
            failures.append(
                f"{bulk['name']}: build speedup {bulk['build_speedup']}x "
                f"below the {min_build_speedup}x gate"
            )
    if sessions is not None:
        cache = sessions["cache"]
        if not cache["ok"]:
            failures.append(
                f"session cache accounting: expected {cache['expected']}, "
                f"observed {cache['observed']} "
                f"(warm build {cache['warm_build_s']}s, "
                f"counts_agree={cache['counts_agree']})"
            )
        hot = sessions["triangle_hot"]
        if hot["diverged"]:
            failures.append(
                f"{hot['name']}: warm count {hot['warm']['count']} != "
                f"cold count {hot['cold']['count']}"
            )
        if min_warm_speedup > 0 and (hot["warm_speedup"] or 0) < min_warm_speedup:
            failures.append(
                f"{hot['name']}: warm speedup {hot['warm_speedup']}x below "
                f"the {min_warm_speedup}x gate"
            )
    if obs_overhead is not None and max_obs_overhead > 0:
        measured = obs_overhead["disabled_overhead_pct"]
        if measured > max_obs_overhead:
            failures.append(
                f"obs overhead: disabled observer costs {measured:+.2f}% "
                f"probe time vs absent (gate: {max_obs_overhead}%)"
            )
        par = obs_overhead.get("parallel")
        if par is not None and not par.get("gate_waived"):
            measured = par["disabled_overhead_pct"]
            if measured > max_obs_overhead:
                failures.append(
                    f"obs overhead (parallel {par['workers']}w): disabled "
                    f"observer costs {measured:+.2f}% wall time vs absent "
                    f"(gate: {max_obs_overhead}%)"
                )
    for case in cases:
        if case["diverged"]:
            counts = {engine: case[engine]["count"] for engine in ENGINES}
            failures.append(f"{case['name']}: engines diverged ({counts})")
    if min_speedup > 0:
        gated = [c for c in cases
                 if c["workload"] == "triangle" and c.get("edges", 0) >= 50_000]
        if not gated:
            failures.append(
                f"--min-speedup given but no triangle case with >=50k edges ran"
            )
        for case in gated:
            if (case["probe_speedup"] or 0) < min_speedup:
                failures.append(
                    f"{case['name']}: probe speedup {case['probe_speedup']}x "
                    f"below the {min_speedup}x gate"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized inputs (seconds, not minutes)")
    parser.add_argument("--index", default="sonic",
                        help="index structure for both engines (default: sonic)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N per cell (default: 3, smoke: 1)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless batch beats tuple by this factor "
                             "(probe time) on triangles with >=50k edges")
    parser.add_argument("--min-warm-speedup", type=float, default=0.0,
                        help="fail unless session-prepared warm re-execution "
                             "beats a cold join() by this factor (total time) "
                             "on the triangle_hot serving case")
    parser.add_argument("--sessions-only", action="store_true",
                        help="run only the session section (cache counter "
                             "verification + triangle_hot); the CI "
                             "session-reuse smoke job")
    parser.add_argument("--min-build-speedup", type=float, default=0.0,
                        help="fail unless the columnar build_bulk path beats "
                             "the per-tuple insert loop by this factor "
                             "(adapter build time) on the pinned triangle")
    parser.add_argument("--build-only", action="store_true",
                        help="run only the bulk-build section (per-tuple vs "
                             "columnar cold build); the CI build-speedup "
                             "smoke job")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker count for the parallel section "
                             "(default: 4)")
    parser.add_argument("--min-parallel-speedup", type=float, default=0.0,
                        help="fail unless the sharded run on --workers "
                             "workers beats one worker by this factor "
                             "(total wall clock); waived with a warning "
                             "when the runner has fewer CPUs than workers")
    parser.add_argument("--parallel-only", action="store_true",
                        help="run only the parallel section (multiprocess "
                             "sharded scaling + equivalence); the CI "
                             "parallel-smoke job")
    parser.add_argument("--min-unified-ratio", type=float, default=0.95,
                        help="fail unless a unified stage-tree plan runs "
                             "within this fraction of the better pure plan "
                             "(total time) on every JOB-light case, and the "
                             "lazy prefix-only case cuts the cold build "
                             "(default: 0.95; <=0 disables the gate)")
    parser.add_argument("--unified-only", action="store_true",
                        help="run only the unified section (stage-tree vs "
                             "pure plans + lazy prefix-only build); the CI "
                             "unified-plan-smoke job")
    parser.add_argument("--max-obs-overhead", type=float, default=5.0,
                        help="fail if a disabled observer costs more than "
                             "this %% probe time vs no observer at all "
                             "(default: 5; <=0 disables the gate)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default: {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.smoke else 3)

    partial = (args.sessions_only or args.build_only or args.parallel_only
               or args.unified_only)
    cases: list[dict] = []
    obs_overhead = sessions = bulk_build = parallel = unified = None
    if args.build_only:
        bulk_build = run_bulk_build(args.smoke, args.index, repeats)
    elif args.sessions_only:
        sessions = run_session_suite(args.smoke, args.index, repeats)
    elif args.parallel_only:
        parallel = run_parallel(args.smoke, args.index, repeats, args.workers)
    elif args.unified_only:
        unified = run_unified(args.smoke, args.index, repeats)
    else:
        cases = run_suite(args.smoke, args.index, repeats)
        obs_overhead = measure_obs_overhead(args.smoke, args.index)
        sessions = run_session_suite(args.smoke, args.index, repeats)
        bulk_build = run_bulk_build(args.smoke, args.index, repeats)
        parallel = run_parallel(args.smoke, args.index, repeats, args.workers)
        unified = run_unified(args.smoke, args.index, repeats)
    failures = check_gates(cases, args.min_speedup,
                           obs_overhead=obs_overhead,
                           max_obs_overhead=args.max_obs_overhead,
                           sessions=sessions,
                           min_warm_speedup=args.min_warm_speedup,
                           bulk=bulk_build,
                           min_build_speedup=args.min_build_speedup,
                           parallel=parallel,
                           min_parallel_speedup=args.min_parallel_speedup,
                           unified=unified,
                           min_unified_ratio=args.min_unified_ratio)

    payload = {
        "suite": "generic_join_trajectory",
        "engines": list(ENGINES),
        "index": args.index,
        "smoke": args.smoke,
        "repeats": repeats,
        "graph_seed": GRAPH_SEED,
        "cases": cases,
        "sessions": sessions,
        "obs_overhead": obs_overhead,
        "bulk_build": bulk_build,
        "parallel": parallel,
        "unified": unified,
    }
    if partial:
        which = ("build-only" if args.build_only
                 else "parallel-only" if args.parallel_only
                 else "unified-only" if args.unified_only
                 else "sessions-only")
        print(f"\n{which} run: not rewriting {args.output}")
    else:
        args.output.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.output} ({len(cases)} cases)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
