"""Fig 4 — index build time vs number of columns (2–8).

Expected shape (§5.5): Sonic is cheapest at 2 columns and grows with the
number of middle levels; trees/tries (BTree, HAT-trie) are expensive;
the hierarchical hash map degrades sharply with column count; flat hash
structures (hashset, robinhood) and SuRF stay robust.
"""

import pytest

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import BUILD_AND_POINT_INDEXES, make_sized_index, print_series

ROWS = 4000
COLUMNS = [2, 3, 4, 6, 8]


def build(name, rows, arity):
    index = make_sized_index(name, arity, len(rows))
    index.build(rows)
    return index


@pytest.mark.parametrize("columns", [2, 4, 8])
@pytest.mark.parametrize("name", BUILD_AND_POINT_INDEXES)
def test_bench_fig04(benchmark, name, columns):
    rows = bench_rows(ROWS, columns, seed=4)
    benchmark.pedantic(build, args=(name, rows, columns),
                       rounds=3, iterations=1)


def test_report_fig04(benchmark):
    def body():
        series = {name: [] for name in BUILD_AND_POINT_INDEXES}
        for columns in COLUMNS:
            rows = bench_rows(ROWS, columns, seed=4)
            for name in BUILD_AND_POINT_INDEXES:
                seconds = measure_seconds(lambda: build(name, rows, columns),
                                          repeats=2)
                series[name].append(round(seconds * 1e3, 2))
        print_series("Fig 4: build time (ms) vs columns", "columns",
                     COLUMNS, series)
        # Shape assertions from §5.5 — restricted to relations that are
        # robust under Python constant factors (structures implemented at
        # the same abstraction level).  BTree/HashTrie lean on CPython's
        # C-level bisect/dict and so undercut the paper's C++ ordering;
        # EXPERIMENTS.md discusses the inversion.
        assert series["sonic"][0] <= min(
            series["hashset"][0], series["robinhood"][0],
            series["hiermap"][0]
        ), "Sonic must build fastest among the open-addressing structures"
        hier_growth = series["hiermap"][-1] / max(series["hiermap"][0], 1e-9)
        hash_growth = series["hashset"][-1] / max(series["hashset"][0], 1e-9)
        assert hier_growth > hash_growth, \
            "hierarchical map must degrade faster than a flat hash set"
        return {"columns": COLUMNS, **series}

    run_report(benchmark, body, "fig04")
