"""Fig 15 — Sonic vs Hash-Trie Join on the skewed 5-relation query (§5.15).

The workload where Umbra's assumptions (cover weights = 1, singleton
pruning, lazy expansion) backfire: R1(a,b,d,e) ⋈ R2(a,c,d,f) ⋈ R3(a,b,c)
⋈ R4(b,d,f) ⋈ R5(c,e,f) with heavy skew on the high-degree attributes.
Expected shape: both WCOJ algorithms beat the binary join; Sonic beats
Hash-Trie by roughly 2×, and the time breakdown shows WCOJ dominated by
build while the binary join is probe-dominated.
"""

import pytest

from conftest import measure_seconds, run_report
from repro.bench import print_table
from repro.data import umbra_adversarial_tables
from repro.joins import join

ROWS = 350
QUERY = "R1(a,b,d,e), R2(a,c,d,f), R3(a,b,c), R4(b,d,f), R5(c,e,f)"
CONTENDERS = {
    "sonic_gj": dict(algorithm="generic", index="sonic"),
    "hashtrie_join": dict(algorithm="hashtrie"),
    "binary": dict(algorithm="binary"),
    "leapfrog": dict(algorithm="leapfrog"),
}


def tables():
    return umbra_adversarial_tables(ROWS, alpha=0.95, seed=15)


@pytest.mark.parametrize("name", sorted(CONTENDERS))
def test_bench_fig15(benchmark, name):
    source = tables()
    benchmark.pedantic(lambda: join(QUERY, source, **CONTENDERS[name]),
                       rounds=2, iterations=1)


def test_report_fig15(benchmark):
    def body():
        source = tables()
        rows = []
        results = {}
        for name, options in CONTENDERS.items():
            result = join(QUERY, source, **options)
            results[name] = result
            seconds = measure_seconds(
                lambda: join(QUERY, source, **options), repeats=2)
            rows.append({
                "algorithm": name,
                "total_ms": round(seconds * 1e3, 2),
                "build_ms": round(result.metrics.build_seconds * 1e3, 2),
                "probe_ms": round(result.metrics.probe_seconds * 1e3, 2),
                "results": result.count,
            })
        for name, result in results.items():
            rows[[r["algorithm"] for r in rows].index(name)]["intermediates"] \
                = result.metrics.intermediate_tuples
        print_table("Fig 15: skewed 5-relation join (Sonic vs Hash-Trie)",
                    rows)
        counts = {row["algorithm"]: row["results"] for row in rows}
        assert len(set(counts.values())) == 1, counts
        # §5.15 shape, in machine-independent work: both WCOJ drivers do
        # strictly less candidate work than the binary pipeline, and they
        # do *identical* work (same algorithm class) — the paper's wall
        # clock ordering between Sonic and Hash-Trie does not transfer to
        # Python, where dict probes are C and Sonic probes are
        # interpreted (see EXPERIMENTS.md).
        inter = {name: result.metrics.intermediate_tuples
                 for name, result in results.items()}
        assert inter["sonic_gj"] < inter["binary"]
        assert inter["hashtrie_join"] < inter["binary"]
        return {"rows": rows}

    run_report(benchmark, body, "fig15")
