"""Fig 1 — Binary Join vs Sonic (Generic) Join vs Hash-Trie Join.

The paper's motivating experiment: a triangle counting query over three
relations whose distribution sweeps from uniform random to maximally
adversarial.  Expected shape: the binary join wins on uniform data (cheap
hash build, no exploding intermediates) and collapses on adversarial data,
while both WCOJ algorithms stay flat; Sonic-backed Generic Join leads the
WCOJ pair.
"""

import pytest

from conftest import measure_seconds, run_report
from repro.bench import print_series
from repro.data import adversarial_triangle_tables
from repro.joins import join

ROWS = 1000
ADVERSITIES = [0.0, 0.25, 0.5, 0.75, 1.0]
QUERY = "R(a,b), S(b,c), T(c,a)"
ALGORITHMS = {
    "binary": dict(algorithm="binary"),
    "sonic_gj": dict(algorithm="generic", index="sonic"),
    "hashtrie": dict(algorithm="hashtrie"),
}


def run(tables, options):
    return join(QUERY, tables, **options).count


@pytest.mark.parametrize("adversity", [0.0, 1.0])
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_bench_fig01(benchmark, name, adversity):
    tables = adversarial_triangle_tables(ROWS, adversity, seed=1)
    benchmark(run, tables, ALGORITHMS[name])


def test_report_fig01(benchmark):
    def body():
        series = {name: [] for name in ALGORITHMS}
        counts = []
        for adversity in ADVERSITIES:
            tables = adversarial_triangle_tables(ROWS, adversity, seed=1)
            reference = None
            for name, options in ALGORITHMS.items():
                result = join(QUERY, tables, **options)
                if reference is None:
                    reference = result.count
                assert result.count == reference, (name, adversity)
                seconds = measure_seconds(lambda: run(tables, options),
                                          repeats=2)
                series[name].append(round(seconds * 1e3, 2))
            counts.append(reference)
        series["triangles"] = counts
        print_series("Fig 1: triangle join runtime (ms) vs data adversity",
                     "adversity", ADVERSITIES, series)
        # the paper's shape: the binary join wins on uniform data, loses
        # on adversarial data — the crossover that motivates WCOJ
        assert series["binary"][0] < series["sonic_gj"][0]
        assert series["binary"][-1] > series["sonic_gj"][-1]
        binary_blowup = series["binary"][-1] / max(series["binary"][0], 1e-9)
        sonic_blowup = series["sonic_gj"][-1] / max(series["sonic_gj"][0], 1e-9)
        assert binary_blowup > 2 * sonic_blowup, (binary_blowup, sonic_blowup)
        return {"adversity": ADVERSITIES, **series}

    run_report(benchmark, body, "fig01")
