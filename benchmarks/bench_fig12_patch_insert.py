"""Fig 12 — insert cost vs number of patched buckets (§5.13).

The paper's conclusion: the patch structure's computational cost on
inserts is *negligible* — the disambiguation mechanism is effectively
free at build time.  We insert into indexes whose buckets were
pre-patched at increasing fractions and verify the flat shape.
"""

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import print_series
from repro.core import SonicConfig, SonicIndex

BASE_ROWS = 4000
EXTRA_ROWS = 1500
COLUMNS = 3
FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]


def prepared(fraction):
    rows = bench_rows(BASE_ROWS + EXTRA_ROWS, COLUMNS, seed=12)
    base, extra = rows[:BASE_ROWS], rows[BASE_ROWS:]
    config = SonicConfig.for_tuples(len(rows))
    index = SonicIndex(COLUMNS, config)
    index.build(base)
    for level in range(1, index.num_levels):
        index.force_patch_fraction(level, fraction)
    return index, extra


def run_inserts(index, extra):
    for row in extra:
        # the per-tuple path IS the thing under measurement (Fig 12 is
        # insert cost vs patched fraction), so no build_bulk here
        index.insert(row)  # repro: noqa[RA806]


def test_bench_fig12_unpatched(benchmark):
    benchmark.pedantic(lambda: run_inserts(*prepared(0.0)),
                       rounds=3, iterations=1)


def test_bench_fig12_fully_patched(benchmark):
    benchmark.pedantic(lambda: run_inserts(*prepared(1.0)),
                       rounds=3, iterations=1)


def test_report_fig12(benchmark):
    def body():
        wall = []
        for fraction in FRACTIONS:
            seconds = measure_seconds(lambda: run_inserts(*prepared(fraction)),
                                      repeats=3)
            wall.append(round(seconds * 1e3, 2))
        print_series(f"Fig 12: {EXTRA_ROWS} inserts (ms) vs patched fraction",
                     "patched", FRACTIONS, {"wall_ms": wall})
        # §5.13 shape: "the computational cost of the patch structure is
        # negligible" — fully patched must stay within 2x of unpatched
        assert wall[-1] < 2.0 * wall[0], wall
        return {"patched": FRACTIONS, "insert_ms": wall}

    run_report(benchmark, body, "fig12")
