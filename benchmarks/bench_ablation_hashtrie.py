"""Ablation — Hash-Trie Join's lazy expansion and singleton pruning
(DESIGN.md §4, [22]).

Toggles Umbra's two signature optimizations on the Fig 15 workload and on
a benign uniform workload.  Expected: pruning+laziness help the benign
case (that is why Umbra ships them) and hurt — or at least stop helping —
under the skewed workload the paper constructs.
"""

import pytest

from conftest import measure_seconds, run_report
from repro.bench import print_table
from repro.data import random_edge_relation, umbra_adversarial_tables
from repro.joins import HashTrieJoin, resolve_relations
from repro.planner import parse_query

SKEWED_QUERY = "R1(a,b,d,e), R2(a,c,d,f), R3(a,b,c), R4(b,d,f), R5(c,e,f)"
VARIANTS = [
    ("lazy+pruning (Umbra)", True, True),
    ("lazy only", True, False),
    ("eager+pruning", False, True),
    ("eager only", False, False),
]


def skewed_relations():
    query = parse_query(SKEWED_QUERY)
    tables = umbra_adversarial_tables(260, alpha=0.95, seed=33)
    return query, resolve_relations(query, tables)


def triangle_relations():
    query = parse_query("E1=E(a,b), E2=E(b,c), E3=E(c,a)")
    edges = random_edge_relation(70, 480, seed=34)
    return query, resolve_relations(query, {"E1": edges, "E2": edges,
                                            "E3": edges})


def run(query, relations, lazy, pruning):
    return HashTrieJoin(query, relations, lazy=lazy,
                        singleton_pruning=pruning).run()


@pytest.mark.parametrize("lazy,pruning", [(True, True), (False, False)])
def test_bench_ablation_hashtrie(benchmark, lazy, pruning):
    query, relations = skewed_relations()
    benchmark.pedantic(lambda: run(query, relations, lazy, pruning),
                       rounds=2, iterations=1)


def test_report_ablation_hashtrie(benchmark):
    def body():
        rows = []
        for workload, make in (("skewed-5rel", skewed_relations),
                               ("triangle-uniform", triangle_relations)):
            counts = set()
            for label, lazy, pruning in VARIANTS:
                query, relations = make()
                result = run(query, relations, lazy, pruning)
                counts.add(result.count)
                seconds = measure_seconds(
                    lambda: run(*make()[0:2], lazy, pruning), repeats=1)
                driver = HashTrieJoin(query, relations, lazy=lazy,
                                      singleton_pruning=pruning)
                driver.run()
                stats = driver.expansion_stats()
                rows.append({
                    "workload": workload,
                    "variant": label,
                    "total_ms": round(seconds * 1e3, 2),
                    "expansions": stats["expansions"],
                    "redistributed": stats["redistributed"],
                    "results": result.count,
                })
            assert len(counts) == 1, (workload, counts)
        print_table("Ablation: Hash-Trie lazy expansion / singleton pruning",
                    rows)
        # on the skewed workload, laziness must pay runtime redistribution
        skewed_lazy = next(r for r in rows
                           if r["workload"] == "skewed-5rel"
                           and r["variant"] == "lazy+pruning (Umbra)")
        assert skewed_lazy["redistributed"] > 0
        return {"rows": rows}

    run_report(benchmark, body, "ablation_hashtrie")
