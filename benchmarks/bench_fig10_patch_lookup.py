"""Fig 10 — lookup cost vs number of artificially patched buckets (§5.13).

The paper's cache-footprint experiment: patch bits are forced to 1 on an
increasing fraction of buckets, so lookups pay the extra patch-key
comparison.  We report both wall-clock and the simulated-cache cycle
estimate (the quantity the paper actually measures — see DESIGN.md).
Expected shape: lookup cost rises with the patched fraction; checking the
patch *bit* alone is nearly free (it stays cache-resident).
"""

from conftest import bench_rows, measure_seconds, run_report
from repro.bench import print_series
from repro.core import SonicConfig, SonicIndex
from repro.hardware import CacheHierarchy, CycleCostModel, MemoryTracer

ROWS = 5000
PROBES = 1500
COLUMNS = 3
FRACTIONS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def build_patched(fraction, tracer_hierarchy=None):
    rows = bench_rows(ROWS, COLUMNS, seed=10)
    config = SonicConfig.for_tuples(len(rows))
    index = SonicIndex(COLUMNS, config)
    index.build(rows)
    for level in range(1, index.num_levels):
        index.force_patch_fraction(level, fraction)
    if tracer_hierarchy is not None:
        index.tracer = MemoryTracer(COLUMNS, config, index.num_levels,
                                    hierarchy=tracer_hierarchy)
    return index, rows


def run_lookups(index, rows):
    for probe in rows[:PROBES]:
        index.contains(probe)


def test_bench_fig10_unpatched(benchmark):
    index, rows = build_patched(0.0)
    benchmark(run_lookups, index, rows)


def test_bench_fig10_fully_patched(benchmark):
    index, rows = build_patched(1.0)
    benchmark(run_lookups, index, rows)


def test_report_fig10(benchmark):
    def body():
        wall, cycles = [], []
        model = CycleCostModel()
        for fraction in FRACTIONS:
            index, rows = build_patched(fraction)
            wall.append(round(
                measure_seconds(lambda: run_lookups(index, rows), repeats=2)
                * 1e3, 2))
            hierarchy = CacheHierarchy()
            index, rows = build_patched(fraction, tracer_hierarchy=hierarchy)
            hierarchy.reset()
            index.tracer.reset()
            run_lookups(index, rows)
            cycles.append(round(model.cycles_per_operation(
                hierarchy, index.tracer.total_touches(), PROBES), 1))
        print_series("Fig 10: lookup cost vs patched-bucket fraction",
                     "patched", FRACTIONS,
                     {"wall_ms": wall, "sim_cycles_per_op": cycles})
        # §5.13 shape: full patching costs more than no patching
        assert cycles[-1] >= cycles[0]
        return {"patched": FRACTIONS, "wall_ms": wall,
                "sim_cycles_per_op": cycles}

    run_report(benchmark, body, "fig10")
