"""Fig 14 — cycle counting (triangles, rectangles, pentagons) on synthetic
graphs (§5.14).

The Generic Join over each candidate index, plus Hash-Trie Join and the
binary baseline.  Expected shape: GJ+Sonic fastest, Hash-Trie Join close
behind, BTree/HAT-trie grouped, hierarchical map competitive (two-column
tables keep its chains short).
"""

import pytest

import time

from conftest import measure_seconds, run_report
from repro.bench import JOIN_INDEXES, print_series
from repro.data import cycle_count_truth, random_edge_relation
from repro.joins import join
from repro.planner import cycle_query

NODES = 60
EDGES = 420
LENGTHS = [3, 4, 5]

CONTENDERS = [("gj_" + name, dict(algorithm="generic", index=name))
              for name in JOIN_INDEXES]
CONTENDERS += [("hashtrie_join", dict(algorithm="hashtrie")),
               ("binary", dict(algorithm="binary")),
               ("leapfrog", dict(algorithm="leapfrog"))]


def setup(length):
    edges = random_edge_relation(NODES, EDGES, seed=14)
    query = cycle_query(length)
    source = {f"E{i}": edges for i in range(1, length + 1)}
    return edges, query, source


@pytest.mark.parametrize("length", [3, 4])
@pytest.mark.parametrize("name,options",
                         [(n, o) for n, o in CONTENDERS
                          if n in ("gj_sonic", "hashtrie_join", "binary")])
def test_bench_fig14(benchmark, name, options, length):
    _, query, source = setup(length)
    benchmark.pedantic(lambda: join(query, source, **options),
                       rounds=2, iterations=1)


def test_report_fig14(benchmark):
    def body():
        series = {name: [] for name, _ in CONTENDERS}
        counts = []
        for length in LENGTHS:
            edges, query, source = setup(length)
            truth = cycle_count_truth(edges, length)
            counts.append(truth)
            for name, options in CONTENDERS:
                start = time.perf_counter()
                result = join(query, source, **options)
                seconds = time.perf_counter() - start
                assert result.count == truth, (name, length, result.count, truth)
                series[name].append(round(seconds * 1e3, 1))
        series["cycles_found"] = counts
        print_series("Fig 14: cycle counting runtime (ms) vs cycle length",
                     "cycle_len", LENGTHS, series)
        # §5.14 shape, within tier: GJ+Sonic tracks GJ+BTree closely and
        # beats GJ+HAT-trie (2x margin absorbs scheduler noise; the exact
        # paper ordering is tier-sensitive, see EXPERIMENTS.md)
        for position in range(len(LENGTHS)):
            assert series["gj_sonic"][position] <= \
                series["gj_btree"][position] * 2.0
            assert series["gj_sonic"][position] <= \
                series["gj_hattrie"][position] * 1.5
        return {"lengths": LENGTHS, **series}

    run_report(benchmark, body, "fig14")
